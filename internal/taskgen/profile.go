package taskgen

import (
	"fmt"
	"math/rand"
	"sort"

	"lamps/internal/dag"
)

// Profile describes the aggregate characteristics of a task graph: the
// generator synthesises a graph matching Nodes, CriticalPath and TotalWork
// exactly and Edges as closely as the construction permits. The paper's
// Table 2 lists these aggregates for the STG application graphs, and all
// scheduling/energy behaviour studied in the paper is driven by them
// (especially the parallelism TotalWork/CriticalPath).
type Profile struct {
	Name         string
	Nodes        int
	Edges        int
	CriticalPath int64
	TotalWork    int64

	// Width optionally bounds the peak task concurrency (the number of
	// processors an ASAP schedule can occupy). 0 picks twice the average
	// parallelism TotalWork/CriticalPath, which matches the width-to-
	// parallelism ratio of the paper's MPEG-1 graph.
	Width int
}

// Table2Profiles reproduces the application-graph rows of Table 2.
var Table2Profiles = []Profile{
	{Name: "fpppp", Nodes: 334, Edges: 1196, CriticalPath: 1062, TotalWork: 7113},
	{Name: "robot", Nodes: 88, Edges: 130, CriticalPath: 545, TotalWork: 2459},
	{Name: "sparse", Nodes: 96, Edges: 128, CriticalPath: 122, TotalWork: 1920},
}

// Fpppp returns a synthetic stand-in for the STG 'fpppp' graph.
func Fpppp() *dag.Graph { return mustProfile(Table2Profiles[0], 1) }

// Robot returns a synthetic stand-in for the STG 'robot' graph.
func Robot() *dag.Graph { return mustProfile(Table2Profiles[1], 1) }

// Sparse returns a synthetic stand-in for the STG 'sparse' graph.
func Sparse() *dag.Graph { return mustProfile(Table2Profiles[2], 1) }

func mustProfile(p Profile, seed int64) *dag.Graph {
	g, err := p.Generate(seed)
	if err != nil {
		panic("taskgen: profile generation failed: " + err.Error())
	}
	return g
}

// Generate synthesises a graph matching the profile. The construction lays
// a backbone chain whose weights sum exactly to CriticalPath, then anchors
// the remaining tasks between chain positions such that no path exceeds the
// backbone, distributing the remaining work TotalWork − CriticalPath over
// them. Entry/exit anchor edges are added or dropped to approach the target
// edge count.
func (p Profile) Generate(seed int64) (*dag.Graph, error) {
	switch {
	case p.Nodes < 1:
		return nil, fmt.Errorf("taskgen: profile %q: Nodes = %d", p.Name, p.Nodes)
	case p.CriticalPath < 1 || p.TotalWork < p.CriticalPath:
		return nil, fmt.Errorf("taskgen: profile %q: work %d < critical path %d",
			p.Name, p.TotalWork, p.CriticalPath)
	case p.TotalWork < int64(p.Nodes):
		return nil, fmt.Errorf("taskgen: profile %q: work %d cannot cover %d unit-weight tasks",
			p.Name, p.TotalWork, p.Nodes)
	}
	rng := rand.New(rand.NewSource(seed))

	// Backbone length: enough pieces to keep each weight <= MaxWeight, and —
	// when the node budget allows — fine-grained enough that the lane-based
	// anchoring below can pack side-task windows with little rounding waste
	// (windows start on backbone boundaries), keeping the graph's width
	// close to the target.
	k := int((p.CriticalPath + 259) / 260)
	if pref := minInt(p.Nodes/3, int(p.CriticalPath/2)); pref > k {
		k = pref
	}
	if k < 2 {
		k = 2
	}
	if k > p.Nodes {
		k = p.Nodes
	}
	if int64(k) > p.CriticalPath {
		k = int(p.CriticalPath)
	}
	side := p.Nodes - k
	sideWork := p.TotalWork - p.CriticalPath
	if side == 0 && sideWork > 0 {
		return nil, fmt.Errorf("taskgen: profile %q: backbone consumes all %d tasks but %d work remains",
			p.Name, p.Nodes, sideWork)
	}
	if sideWork < int64(side) {
		// Not enough residual work for the parallel tasks: shorten the
		// backbone budget by moving work out of it is impossible (CPL is
		// exact), so the profile is unrealisable with positive weights.
		return nil, fmt.Errorf("taskgen: profile %q: residual work %d below %d side tasks",
			p.Name, sideWork, side)
	}

	chainW := splitExact(rng, p.CriticalPath, k, 1, MaxWeight)
	if chainW == nil {
		return nil, fmt.Errorf("taskgen: profile %q: cannot split CPL %d into %d pieces",
			p.Name, p.CriticalPath, k)
	}
	// Side weights must allow an anchoring with path <= CPL: cap them at
	// half the CPL so an entry anchor always exists.
	sideCap := int64(MaxWeight)
	if c := p.CriticalPath / 2; c < sideCap {
		sideCap = c
	}
	if sideCap < 1 {
		sideCap = 1
	}
	var sideW []int64
	if side > 0 {
		sideW = splitExact(rng, sideWork, side, 1, sideCap)
		if sideW == nil {
			return nil, fmt.Errorf("taskgen: profile %q: cannot split side work %d into %d pieces <= %d",
				p.Name, sideWork, side, sideCap)
		}
	}

	b := dag.NewBuilder(p.Name)
	chain := make([]int, k)
	for i := range chain {
		chain[i] = b.AddTask(chainW[i])
	}
	// pre[i] = sum of chain weights before position i; pre[k] = CPL.
	pre := make([]int64, k+1)
	for i := 0; i < k; i++ {
		pre[i+1] = pre[i] + chainW[i]
	}

	type edge struct{ from, to int }
	var edges []edge
	for i := 0; i < k-1; i++ {
		edges = append(edges, edge{chain[i], chain[i+1]})
	}

	// Anchor each side task: entry after chain[i] (so its top level is
	// pre[i+1]) and exit before the first chain[j] with pre[j] >= top + w.
	budget := p.Edges - len(edges)
	type anchored struct {
		task int
		in   int // entry anchor chain index, -1 for none (source task)
		out  int // exit anchor chain index, k for none (sink task)
	}
	// Lane-based anchoring bounds the peak concurrency: each of the W lanes
	// holds side tasks whose ASAP windows do not overlap, so the graph's
	// width stays near W+1 (the +1 is the backbone). Each task goes to the
	// lane with the earliest free time.
	lanes := p.Width - 1
	if lanes <= 0 {
		lanes = int(2 * float64(p.TotalWork) / float64(p.CriticalPath))
	}
	if lanes < 1 {
		lanes = 1
	}
	cursor := make([]int64, lanes)
	anchors := make([]anchored, side)
	for si := 0; si < side; si++ {
		w := sideW[si]
		v := b.AddTask(w)
		lane := 0
		for l := 1; l < lanes; l++ {
			if cursor[l] < cursor[lane] {
				lane = l
			}
		}
		// The window starts at the first backbone boundary at or after the
		// lane's free time: pre[j] with entry anchor chain[j-1] (j = 0 means
		// no entry anchor, i.e. a source task starting at time 0).
		in := -1
		top := int64(-1)
		if j := sort.Search(k, func(j int) bool { return pre[j] >= cursor[lane] }); pre[j]+w <= p.CriticalPath {
			in = j - 1
			top = pre[j]
		} else {
			// The lane is full; fall back to a random feasible anchor (the
			// window overlaps others in this lane, slightly raising width).
			hi := sort.Search(k, func(i int) bool { return pre[i+1]+w > p.CriticalPath })
			if hi > 0 {
				in = rng.Intn(hi)
				top = pre[in+1]
			} else {
				top = 0
			}
		}
		cursor[lane] = top + w
		out := sort.Search(k, func(j int) bool { return pre[j] >= top+w })
		anchors[si] = anchored{v, in, out}
		// Spend the edge budget: prefer both anchors, then entry only.
		wantIn := in >= 0
		wantOut := out < k
		need := 0
		if wantIn {
			need++
		}
		if wantOut {
			need++
		}
		remainingMin := side - si - 1 // later tasks need >= 1 edge each ideally
		if budget-need < remainingMin && need > 1 {
			// Trim to one edge to save budget for later tasks.
			wantOut = false
			need = 1
		}
		if wantIn {
			edges = append(edges, edge{chain[in], v})
			budget--
		}
		if wantOut {
			edges = append(edges, edge{v, chain[out]})
			budget--
		}
	}
	// Spend any leftover budget on extra anchors that cannot change the
	// critical path: extra exits strictly after the chosen one (a later
	// chain node is reachable whenever an earlier one is) and extra entries
	// strictly before the chosen one (an earlier entry cannot raise the
	// task's top level). The loop stops when no task can absorb more edges.
	for budget > 0 && side > 0 {
		progress := false
		for si := 0; si < side && budget > 0; si++ {
			a := &anchors[si]
			if a.out+1 < k {
				a.out++
				edges = append(edges, edge{a.task, chain[a.out]})
				budget--
				progress = true
				continue
			}
			if a.in > 0 {
				a.in--
				edges = append(edges, edge{chain[a.in], a.task})
				budget--
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	for _, e := range edges {
		b.AddEdge(e.from, e.to)
	}
	return b.Build()
}

// splitExact splits total into n integer parts, each within [lo, hi],
// summing exactly to total; nil when impossible. Parts are randomised around
// the mean.
func splitExact(rng *rand.Rand, total int64, n int, lo, hi int64) []int64 {
	if n <= 0 || total < int64(n)*lo || total > int64(n)*hi {
		return nil
	}
	parts := make([]int64, n)
	remaining := total
	for i := 0; i < n; i++ {
		left := n - i - 1
		// Bounds so the remainder stays satisfiable.
		minW := remaining - int64(left)*hi
		if minW < lo {
			minW = lo
		}
		maxW := remaining - int64(left)*lo
		if maxW > hi {
			maxW = hi
		}
		w := minW
		if maxW > minW {
			// Bias towards the mean for a natural-looking distribution.
			mean := remaining / int64(left+1)
			span := maxW - minW + 1
			w = minW + rng.Int63n(span)
			if mean >= minW && mean <= maxW {
				w = (w + mean) / 2
			}
		}
		parts[i] = w
		remaining -= w
	}
	// Shuffle so the adjusted tail is not always last.
	rng.Shuffle(n, func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
	return parts
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
