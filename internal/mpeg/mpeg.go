// Package mpeg builds the MPEG-1 encoding task graph of the paper's
// Section 5.3 (Fig. 9): a closed group of pictures with I, P and B frames,
// where every P frame depends on the previous reference frame (I or P) and
// every B frame depends on the reference frames surrounding it in display
// order. Execution times are the maximum per-frame-type encoding times of
// the Tennis sequence reported by Zhu et al., scaled to a 3.1 GHz clock.
package mpeg

import (
	"errors"
	"fmt"

	"lamps/internal/dag"
)

// Maximum encoding cycle counts per frame type for the Tennis sequence,
// as quoted in the paper's Fig. 9 caption.
const (
	ICycles int64 = 36_700_900
	BCycles int64 = 178_259_300
	PCycles int64 = 73_401_800
)

// GOP15 is the paper's 15-frame group of pictures in display order:
// I B B P B B P B B P B B P B B.
const GOP15 = "IBBPBBPBBPBBPBB"

// RealTimeDeadline is the paper's deadline for one GOP15: 0.5 seconds,
// matching a real-time encoding requirement of 30 frames per second.
const RealTimeDeadline = 0.5

// ErrBadPattern is returned for malformed GOP patterns.
var ErrBadPattern = errors.New("mpeg: invalid GOP pattern")

// Cycles maps a frame type to its encoding time; used to customise the
// per-type costs.
type Cycles map[byte]int64

// TennisCycles returns the paper's Tennis-sequence cycle counts.
func TennisCycles() Cycles {
	return Cycles{'I': ICycles, 'B': BCycles, 'P': PCycles}
}

// BuildGOP constructs the dependence graph of one closed GOP given its
// display-order pattern (a string over {I, P, B} starting with I). Frame i
// is task i with label "<type><i>". Dependences (closed GOP):
//
//   - A P frame depends on the nearest preceding reference frame (I or P).
//   - A B frame depends on the nearest preceding reference frame and on the
//     nearest following reference frame (if any; trailing B frames of a
//     closed GOP depend only on the preceding reference).
//
// With the GOP15 pattern and Tennis cycle counts this reproduces Fig. 9.
func BuildGOP(pattern string, cycles Cycles) (*dag.Graph, error) {
	if len(pattern) == 0 {
		return nil, fmt.Errorf("%w: empty pattern", ErrBadPattern)
	}
	if pattern[0] != 'I' {
		return nil, fmt.Errorf("%w: pattern must start with an I frame, got %q", ErrBadPattern, pattern[0])
	}
	b := dag.NewBuilder("mpeg-" + pattern)
	for i := 0; i < len(pattern); i++ {
		ft := pattern[i]
		w, ok := cycles[ft]
		if !ok {
			return nil, fmt.Errorf("%w: unknown frame type %q at position %d", ErrBadPattern, ft, i)
		}
		if w <= 0 {
			return nil, fmt.Errorf("%w: non-positive cycles for frame type %q", ErrBadPattern, ft)
		}
		b.AddLabeledTask(w, fmt.Sprintf("%c%d", ft, i))
	}
	isRef := func(c byte) bool { return c == 'I' || c == 'P' }
	prevRef := func(i int) int {
		for j := i - 1; j >= 0; j-- {
			if isRef(pattern[j]) {
				return j
			}
		}
		return -1
	}
	nextRef := func(i int) int {
		for j := i + 1; j < len(pattern); j++ {
			if isRef(pattern[j]) {
				return j
			}
		}
		return -1
	}
	for i := 0; i < len(pattern); i++ {
		switch pattern[i] {
		case 'I':
			// Intra-coded: no dependences.
		case 'P':
			if p := prevRef(i); p >= 0 {
				b.AddEdge(p, i)
			}
		case 'B':
			if p := prevRef(i); p >= 0 {
				b.AddEdge(p, i)
			}
			if nx := nextRef(i); nx >= 0 {
				b.AddEdge(nx, i)
			}
		}
	}
	return b.Build()
}

// Fig9 returns the paper's MPEG-1 benchmark graph: GOP15 with the Tennis
// cycle counts.
func Fig9() *dag.Graph {
	g, err := BuildGOP(GOP15, TennisCycles())
	if err != nil {
		panic("mpeg: Fig9 construction failed: " + err.Error())
	}
	return g
}
