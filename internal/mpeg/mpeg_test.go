package mpeg

import (
	"errors"
	"testing"

	"lamps/internal/sched"
)

func TestFig9Aggregates(t *testing.T) {
	g := Fig9()
	if g.NumTasks() != 15 {
		t.Fatalf("NumTasks = %d, want 15", g.NumTasks())
	}
	// Work: 1 I + 4 P + 10 B frames.
	wantWork := ICycles + 4*PCycles + 10*BCycles
	if g.TotalWork() != wantWork {
		t.Errorf("TotalWork = %d, want %d", g.TotalWork(), wantWork)
	}
	// Critical path: I0 -> P3 -> P6 -> P9 -> P12 -> B13 (or B14).
	wantCPL := ICycles + 4*PCycles + BCycles
	if g.CriticalPathLength() != wantCPL {
		t.Errorf("CPL = %d, want %d", g.CriticalPathLength(), wantCPL)
	}
	// Edges: 4 along the reference chain, 2 per non-trailing B (8 Bs), 1 per
	// trailing B (2 Bs).
	if g.NumEdges() != 4+8*2+2 {
		t.Errorf("NumEdges = %d, want 22", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// The real-time deadline is roughly 3x the CPL, as the paper notes
	// implicitly by it being comfortably schedulable.
	cplSec := float64(wantCPL) / 3.1e9
	if RealTimeDeadline/cplSec < 2.5 || RealTimeDeadline/cplSec > 3.5 {
		t.Errorf("deadline/CPL ratio = %g, expected around 3", RealTimeDeadline/cplSec)
	}
}

func TestFig9Dependences(t *testing.T) {
	g := Fig9()
	// Task indices follow display order: I0 B1 B2 P3 B4 B5 P6 ...
	wantPreds := map[int][]int{
		0:  {},      // I0
		1:  {0, 3},  // B1 <- I0, P3
		2:  {0, 3},  // B2
		3:  {0},     // P3 <- I0
		4:  {3, 6},  // B4 <- P3, P6
		5:  {3, 6},  // B5
		6:  {3},     // P6 <- P3
		7:  {6, 9},  // B7
		8:  {6, 9},  // B8
		9:  {6},     // P9
		10: {9, 12}, // B10
		11: {9, 12}, // B11
		12: {9},     // P12
		13: {12},    // B13 (closed GOP: trailing B)
		14: {12},    // B14
	}
	for v, want := range wantPreds {
		got := g.Preds(v)
		if len(got) != len(want) {
			t.Errorf("task %d preds = %v, want %v", v, got, want)
			continue
		}
		for i := range want {
			if int(got[i]) != want[i] {
				t.Errorf("task %d preds = %v, want %v", v, got, want)
				break
			}
		}
	}
}

// TestFig9Parallelism verifies the peak concurrency that determines how
// many processors S&S employs.
func TestFig9Parallelism(t *testing.T) {
	g := Fig9()
	if g.MaxWidth() < 7 || g.MaxWidth() > 8 {
		t.Errorf("MaxWidth = %d, expected 7..8 (the paper's S&S employs 7)", g.MaxWidth())
	}
	s, err := sched.ListEDF(g, g.MaxWidth())
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != g.CriticalPathLength() {
		t.Errorf("makespan with full width = %d, want CPL %d", s.Makespan, g.CriticalPathLength())
	}
}

func TestBuildGOPErrors(t *testing.T) {
	cases := []struct {
		pattern string
		cycles  Cycles
	}{
		{"", TennisCycles()},
		{"BIP", TennisCycles()},
		{"IXB", TennisCycles()},
		{"IPB", Cycles{'I': 1, 'P': 0, 'B': 1}},
		{"IPB", Cycles{'I': 1, 'B': 1}},
	}
	for _, tc := range cases {
		if _, err := BuildGOP(tc.pattern, tc.cycles); !errors.Is(err, ErrBadPattern) {
			t.Errorf("BuildGOP(%q) err = %v, want ErrBadPattern", tc.pattern, err)
		}
	}
}

func TestBuildGOPVariants(t *testing.T) {
	// I-only GOP: no edges at all.
	g, err := BuildGOP("III", Cycles{'I': 5})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Errorf("III edges = %d, want 0", g.NumEdges())
	}
	// IPPP: a chain.
	g, err = BuildGOP("IPPP", TennisCycles())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 || g.MaxWidth() != 1 {
		t.Errorf("IPPP edges=%d width=%d, want chain", g.NumEdges(), g.MaxWidth())
	}
	// IBP: B depends on both I and P; P depends on I.
	g, err = BuildGOP("IBP", TennisCycles())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Errorf("IBP edges = %d, want 3", g.NumEdges())
	}
	if g.Label(1) != "B1" || g.Label(2) != "P2" {
		t.Errorf("labels = %q, %q", g.Label(1), g.Label(2))
	}
}
