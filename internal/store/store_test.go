package store

import (
	"bytes"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

const testStamp = "test/v1"

// quietLogger discards log output; capturedLogger collects it for assertions
// on the warning paths.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(discard{}, nil))
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func capturedLogger() (*slog.Logger, *logBuf) {
	b := &logBuf{}
	return slog.New(slog.NewTextHandler(b, nil)), b
}

type logBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// fill writes n deterministic records and closes the store, returning the
// expected contents.
func fill(t *testing.T, dir string, n int) map[string][]byte {
	t.Helper()
	st, err := Open(dir, testStamp, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("digest-%04d", i)
		val := bytes.Repeat([]byte{byte(i)}, 10+i*7)
		if err := st.Put(key, val); err != nil {
			t.Fatalf("Put(%s): %v", key, err)
		}
		want[key] = val
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return want
}

// loadAll reopens the store and collects every recovered record.
func loadAll(t *testing.T, dir string, logger *slog.Logger) (map[string][]byte, Stats) {
	t.Helper()
	st, err := Open(dir, testStamp, logger)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got := make(map[string][]byte)
	st.WarmLoad(func(k string, v []byte) { got[k] = v })
	return got, st.Stats()
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := fill(t, dir, 25)
	got, stats := loadAll(t, dir, quietLogger())
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for k, v := range want {
		if !bytes.Equal(got[k], v) {
			t.Errorf("key %s: recovered %d bytes, want %d (byte-identical)", k, len(got[k]), len(v))
		}
	}
	if stats.Loaded != 25 || stats.Segments != 1 || stats.DroppedTails != 0 || stats.Stale != 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestPutDeduplicates(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, testStamp, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if st.Stats().Appended != 1 {
		t.Errorf("Appended = %d, want 1 (second Put of the same key is a no-op)", st.Stats().Appended)
	}

	// Reopen: loaded keys must not be re-appended either, so a warm restart
	// does not grow the log.
	st2, err := Open(dir, testStamp, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	if st2.Stats().Appended != 0 {
		t.Errorf("Appended after reopen = %d, want 0", st2.Stats().Appended)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(names) != 1 {
		t.Errorf("%d segments on disk, want 1 (no new segment without new records)", len(names))
	}
}

func TestAppendsAfterReopenUseNewSegment(t *testing.T) {
	dir := t.TempDir()
	fill(t, dir, 3)
	st, err := Open(dir, testStamp, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("extra", []byte("E")); err != nil {
		t.Fatal(err)
	}
	st.Close()
	names, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(names) != 2 {
		t.Fatalf("%d segments, want 2 (append never reopens an old segment)", len(names))
	}
	got, stats := loadAll(t, dir, quietLogger())
	if len(got) != 4 || stats.Loaded != 4 || stats.Segments != 2 {
		t.Errorf("recovered %d records, stats %+v", len(got), stats)
	}
}

// TestTruncationAtEveryByteBoundary is the crash-recovery gate: a segment cut
// anywhere inside its final record must reopen to exactly the intact prefix,
// with the tail dropped, a warning logged, and never a panic or a partial
// record.
func TestTruncationAtEveryByteBoundary(t *testing.T) {
	master := t.TempDir()
	const n = 5
	want := fill(t, master, n)
	names, _ := filepath.Glob(filepath.Join(master, "seg-*.log"))
	if len(names) != 1 {
		t.Fatalf("%d segments, want 1", len(names))
	}
	whole, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}

	// Locate the start of the last record by encoding the known sizes: the
	// record layout is 8 (lens) + len(key) + len(val) + 4 (crc).
	lastKey := fmt.Sprintf("digest-%04d", n-1)
	lastLen := 8 + len(lastKey) + len(want[lastKey]) + 4
	lastStart := len(whole) - lastLen

	for cut := lastStart; cut < len(whole); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "seg-000001.log"), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		logger, logs := capturedLogger()
		got, stats := loadAll(t, dir, logger)
		if len(got) != n-1 {
			t.Fatalf("cut at byte %d: recovered %d records, want %d", cut, len(got), n-1)
		}
		for i := 0; i < n-1; i++ {
			key := fmt.Sprintf("digest-%04d", i)
			if !bytes.Equal(got[key], want[key]) {
				t.Fatalf("cut at byte %d: record %s not byte-identical", cut, key)
			}
		}
		if _, ok := got[lastKey]; ok {
			t.Fatalf("cut at byte %d: truncated final record was served", cut)
		}
		if cut == lastStart {
			// Cut exactly on the record boundary: the segment ends cleanly,
			// nothing was dropped and nothing should be warned about.
			if stats.DroppedTails != 0 {
				t.Fatalf("clean boundary cut: DroppedTails = %d, want 0", stats.DroppedTails)
			}
			continue
		}
		if stats.DroppedTails != 1 {
			t.Fatalf("cut at byte %d: DroppedTails = %d, want 1", cut, stats.DroppedTails)
		}
		if !strings.Contains(logs.String(), "truncated or corrupt") {
			t.Fatalf("cut at byte %d: no warning logged; log:\n%s", cut, logs.String())
		}
	}
}

func TestChecksumMismatchDropsTail(t *testing.T) {
	dir := t.TempDir()
	want := fill(t, dir, 4)
	names, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	whole, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the final record (its value area: somewhere in
	// the last record but before the trailing 4-byte CRC).
	whole[len(whole)-10] ^= 0xFF
	if err := os.WriteFile(names[0], whole, 0o644); err != nil {
		t.Fatal(err)
	}
	logger, logs := capturedLogger()
	got, stats := loadAll(t, dir, logger)
	if len(got) != 3 {
		t.Fatalf("recovered %d records, want 3 (corrupt final record dropped)", len(got))
	}
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("digest-%04d", i)
		if !bytes.Equal(got[key], want[key]) {
			t.Errorf("record %s not byte-identical after tail drop", key)
		}
	}
	if stats.DroppedTails != 1 {
		t.Errorf("DroppedTails = %d, want 1", stats.DroppedTails)
	}
	if !strings.Contains(logs.String(), "checksum mismatch") {
		t.Errorf("warning should name the checksum mismatch; log:\n%s", logs.String())
	}
}

// TestMidSegmentCorruptionKeepsPrefixOnly: damage in the middle of a segment
// drops everything from the damage onward — a record after a corrupt one can
// never be trusted to start at a true boundary.
func TestMidSegmentCorruptionKeepsPrefixOnly(t *testing.T) {
	dir := t.TempDir()
	fill(t, dir, 6)
	names, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	whole, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	whole[len(whole)/2] ^= 0xFF
	if err := os.WriteFile(names[0], whole, 0o644); err != nil {
		t.Fatal(err)
	}
	got, stats := loadAll(t, dir, quietLogger())
	if len(got) >= 6 {
		t.Fatalf("recovered %d records from a damaged segment, want fewer than 6", len(got))
	}
	if stats.DroppedTails != 1 {
		t.Errorf("DroppedTails = %d, want 1", stats.DroppedTails)
	}
}

func TestStaleStampSkipsSegment(t *testing.T) {
	dir := t.TempDir()
	fill(t, dir, 3)
	st, err := Open(dir, "test/v2-new-kernel", quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	n := st.WarmLoad(func(string, []byte) {})
	if n != 0 {
		t.Errorf("loaded %d records across a version-stamp change, want 0", n)
	}
	if s := st.Stats(); s.Stale != 1 || s.Loaded != 0 {
		t.Errorf("stats = %+v, want 1 stale segment and nothing loaded", s)
	}
	// The old-stamp segment stays on disk untouched; a new-stamp writer gets
	// its own segment.
	if err := st.Put("fresh", []byte("F")); err != nil {
		t.Fatal(err)
	}
	st.Close()
	got, _ := loadAll(t, dir, quietLogger()) // back under testStamp
	if _, ok := got["fresh"]; ok {
		t.Error("record written under a different stamp visible to the old stamp")
	}
	if len(got) != 3 {
		t.Errorf("old-stamp records: %d, want 3 (untouched)", len(got))
	}
}

func TestGarbageFileSkipped(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-000001.log"), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, stats := loadAll(t, dir, quietLogger())
	if len(got) != 0 || stats.Stale != 1 {
		t.Errorf("garbage segment: recovered %d records, stats %+v", len(got), stats)
	}
}

func TestWarmLoadOrderOldestFirst(t *testing.T) {
	dir := t.TempDir()
	fill(t, dir, 3)
	st, err := Open(dir, testStamp, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var order []string
	st.WarmLoad(func(k string, _ []byte) { order = append(order, k) })
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatalf("warm-load order not oldest-first: %v", order)
		}
	}
	if n := st.WarmLoad(func(string, []byte) { t.Error("second WarmLoad delivered records") }); n != 0 {
		t.Errorf("second WarmLoad returned %d", n)
	}
}

func TestClosedStoreRejectsWrites(t *testing.T) {
	st, err := Open(t.TempDir(), testStamp, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if err := st.Put("k", []byte("v")); err != ErrClosed {
		t.Errorf("Put after Close = %v, want ErrClosed", err)
	}
	if err := st.Flush(); err != ErrClosed {
		t.Errorf("Flush after Close = %v, want ErrClosed", err)
	}
	if err := st.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
}

// TestConcurrentPuts hammers Put from many goroutines; under -race it proves
// the locking is sound, and the reopened store must hold every record intact.
func TestConcurrentPuts(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, testStamp, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if err := st.Put(key, []byte(key)); err != nil {
					t.Errorf("Put(%s): %v", key, err)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	got, stats := loadAll(t, dir, quietLogger())
	if len(got) != 400 || stats.DroppedTails != 0 {
		t.Fatalf("recovered %d records (stats %+v), want 400 intact", len(got), stats)
	}
	for k, v := range got {
		if string(v) != k {
			t.Fatalf("record %s holds %q", k, v)
		}
	}
}
