// Package store implements lampsd's persistent, content-addressed result
// store: an append-only segment log mapping canonical problem digests
// (internal/graphhash keys) to fully rendered response bodies, so a restarted
// server serves byte-identical results for every digest it had cached before
// shutdown.
//
// On-disk layout: a directory of segment files named seg-NNNNNN.log, each
// opened exactly once for append by the process that created it and read-only
// ever after. A segment starts with a fixed magic (the file-format version)
// and a caller-supplied version stamp; records follow back to back:
//
//	magic    [8]byte  "LAMPSEG1"
//	stampLen uint32   little endian
//	stamp    []byte   invalidation token (e.g. graphhash + result encoding
//	                  versions): a segment whose stamp differs from the
//	                  opener's is stale and skipped wholesale
//
//	record := keyLen uint32 | valLen uint32 | key | val | crc32 uint32
//
// where crc32 is the IEEE checksum of key||val. The format is deliberately
// recoverable in one forward pass: a crash can only damage the tail of the
// newest segment, and Open detects any anomaly — short header, impossible
// length, truncated payload, checksum mismatch — logs a warning, drops the
// tail from that point on and keeps every intact record before it. A damaged
// or stale segment can therefore never crash the server or resurface wrong
// bytes; at worst some results are recomputed.
//
// Writes are buffered; Flush pushes them to the OS and Close additionally
// fsyncs, so a graceful drain persists everything and a hard crash loses at
// most the unflushed tail (which the next Open then cleanly drops). Keys are
// content addresses: one key maps to one immutable value forever, so Put
// deduplicates against everything already persisted and re-putting a loaded
// key is a cheap no-op — restarting a warm server does not grow the log.
package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// magic identifies the segment file format; changing the record encoding
// means changing this string, which makes old segments unreadable-as-stale
// rather than misread.
var magic = [8]byte{'L', 'A', 'M', 'P', 'S', 'E', 'G', '1'}

// Sanity bounds on record framing: anything larger is treated as corruption,
// not as an instruction to allocate gigabytes.
const (
	maxKeyLen = 1 << 20 // 1 MiB: digests are 64 bytes, this is generous
	maxValLen = 1 << 30 // 1 GiB
)

// ErrClosed is returned by Put and Flush after Close.
var ErrClosed = errors.New("store: closed")

// Stats reports what Open found on disk and what has happened since.
type Stats struct {
	Segments     int // readable segment files found by Open (stale included)
	Stale        int // segments skipped wholesale: different version stamp
	Loaded       int // records recovered by Open across all live segments
	DroppedTails int // segments whose trailing bytes were truncated/corrupt and dropped
	Appended     int // records appended by this process
}

// Store is an open result store. All methods are safe for concurrent use.
// Create one with Open; Close it to flush and fsync the active segment.
type Store struct {
	dir   string
	stamp string
	log   *slog.Logger

	mu      sync.Mutex
	pending []record // records recovered by Open, in on-disk order; nil after WarmLoad
	seen    map[string]struct{}
	nextSeg int
	f       *os.File      // active segment; nil until the first Put
	w       *bufio.Writer // nil until the first Put
	closed  bool
	stats   Stats
}

type record struct {
	key string
	val []byte
}

// Open opens (creating if necessary) the store directory and recovers every
// intact record from its segments. stamp is the invalidation token: segments
// written under a different stamp — an older kernel, a changed digest or
// response encoding — are skipped wholesale, which is how version changes
// invalidate the persisted cache cleanly. A nil logger selects slog.Default().
func Open(dir, stamp string, logger *slog.Logger) (*Store, error) {
	if logger == nil {
		logger = slog.Default()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &Store{
		dir:     dir,
		stamp:   stamp,
		log:     logger,
		seen:    make(map[string]struct{}),
		nextSeg: 1,
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return nil, fmt.Errorf("store: listing %s: %w", dir, err)
	}
	sort.Strings(names) // zero-padded numbers: lexical order = creation order
	for _, name := range names {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%d.log", &n); err == nil && n >= s.nextSeg {
			s.nextSeg = n + 1
		}
		s.loadSegment(name)
	}
	return s, nil
}

// loadSegment recovers the intact prefix of one segment file into pending.
// Any anomaly — unreadable header, wrong magic, stale stamp, truncated or
// checksum-failing record — is logged and terminates the scan of this
// segment; it never returns an error, because a damaged segment must degrade
// to a smaller warm set, not a failed startup.
func (s *Store) loadSegment(name string) {
	f, err := os.Open(name)
	if err != nil {
		s.log.Warn("store: skipping unreadable segment", "segment", name, "err", err)
		return
	}
	defer f.Close()
	s.stats.Segments++

	r := bufio.NewReaderSize(f, 1<<16)
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil || hdr != magic {
		s.log.Warn("store: segment has no valid header, skipping", "segment", name)
		s.stats.Stale++
		return
	}
	stamp, err := readFramed(r, maxKeyLen)
	if err != nil {
		s.log.Warn("store: segment stamp unreadable, skipping", "segment", name, "err", err)
		s.stats.Stale++
		return
	}
	if string(stamp) != s.stamp {
		s.log.Info("store: skipping stale segment (version stamp changed)",
			"segment", name, "stamp", string(stamp), "want", s.stamp)
		s.stats.Stale++
		return
	}

	offset := int64(8 + 4 + len(stamp))
	loaded := 0
	for {
		rec, n, rerr := readRecord(r)
		if rerr == io.EOF {
			break // clean end of segment
		}
		if rerr != nil {
			s.stats.DroppedTails++
			s.log.Warn("store: segment tail truncated or corrupt, dropping",
				"segment", name, "offset", offset, "records_kept", loaded, "err", rerr)
			break
		}
		s.pending = append(s.pending, rec)
		s.seen[rec.key] = struct{}{}
		offset += n
		loaded++
	}
	s.stats.Loaded += loaded
}

// readFramed reads one uint32-length-framed byte string.
func readFramed(r io.Reader, max uint32) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > max {
		return nil, fmt.Errorf("framed length %d exceeds bound %d", n, max)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// readRecord reads one record. io.EOF means the segment ended cleanly at a
// record boundary; any other error means the tail from here on is damaged.
// n is the record's encoded size in bytes.
func readRecord(r io.Reader) (rec record, n int64, err error) {
	var lens [8]byte
	if _, err := io.ReadFull(r, lens[:]); err != nil {
		if err == io.EOF {
			return record{}, 0, io.EOF
		}
		return record{}, 0, fmt.Errorf("short record header: %w", err)
	}
	keyLen := binary.LittleEndian.Uint32(lens[0:4])
	valLen := binary.LittleEndian.Uint32(lens[4:8])
	if keyLen == 0 || keyLen > maxKeyLen || valLen > maxValLen {
		return record{}, 0, fmt.Errorf("implausible record framing (key %d, val %d bytes)", keyLen, valLen)
	}
	payload := make([]byte, int(keyLen)+int(valLen))
	if _, err := io.ReadFull(r, payload); err != nil {
		return record{}, 0, fmt.Errorf("truncated record payload: %w", err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return record{}, 0, fmt.Errorf("truncated record checksum: %w", err)
	}
	if binary.LittleEndian.Uint32(sum[:]) != crc32.ChecksumIEEE(payload) {
		return record{}, 0, errors.New("record checksum mismatch")
	}
	return record{key: string(payload[:keyLen]), val: payload[keyLen:]},
		8 + int64(keyLen) + int64(valLen) + 4, nil
}

// WarmLoad hands every recovered record to fn in on-disk (oldest-first)
// order — replayed into an LRU, the newest results win residency — then
// releases the recovered data. A second call is a no-op.
func (s *Store) WarmLoad(fn func(key string, val []byte)) int {
	s.mu.Lock()
	pending := s.pending
	s.pending = nil
	s.mu.Unlock()
	for _, rec := range pending {
		fn(rec.key, rec.val)
	}
	return len(pending)
}

// Put appends one record to the active segment, creating the segment on
// first use. Keys are content addresses, so a key that is already persisted —
// loaded from disk or appended earlier — is skipped silently. The write is
// buffered; see Flush and Close.
func (s *Store) Put(key string, val []byte) error {
	if key == "" || len(key) > maxKeyLen || len(val) > maxValLen {
		return fmt.Errorf("store: unstorable record (key %d, val %d bytes)", len(key), len(val))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.seen[key]; ok {
		return nil
	}
	if s.w == nil {
		if err := s.openSegmentLocked(); err != nil {
			return err
		}
	}
	var lens [8]byte
	binary.LittleEndian.PutUint32(lens[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(lens[4:8], uint32(len(val)))
	crc := crc32.NewIEEE()
	crc.Write([]byte(key))
	crc.Write(val)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	for _, b := range [][]byte{lens[:], []byte(key), val, sum[:]} {
		if _, err := s.w.Write(b); err != nil {
			return fmt.Errorf("store: appending record: %w", err)
		}
	}
	s.seen[key] = struct{}{}
	s.stats.Appended++
	return nil
}

// openSegmentLocked creates the process's append segment and writes its
// header. Called lazily by the first Put, so a process that never stores
// anything new leaves no empty segment behind.
func (s *Store) openSegmentLocked() error {
	name := filepath.Join(s.dir, fmt.Sprintf("seg-%06d.log", s.nextSeg))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating segment: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	var buf bytes.Buffer
	buf.Write(magic[:])
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(s.stamp)))
	buf.Write(n[:])
	buf.WriteString(s.stamp)
	if _, err := w.Write(buf.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("store: writing segment header: %w", err)
	}
	s.f, s.w, s.nextSeg = f, w, s.nextSeg+1
	return nil
}

// Flush pushes buffered appends to the operating system (no fsync).
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.w == nil {
		return nil
	}
	return s.w.Flush()
}

// Close flushes, fsyncs and closes the active segment. The store rejects
// further writes; a graceful drain calls this exactly once.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.w == nil {
		return nil
	}
	var firstErr error
	if err := s.w.Flush(); err != nil {
		firstErr = err
	}
	if err := s.f.Sync(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := s.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	s.f, s.w = nil, nil
	return firstErr
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
