module lamps

go 1.22
