// Runtime variation and online slack reclamation: static schedules are
// built from worst-case execution times, but real tasks usually finish
// early. This example simulates the MPEG-1 schedule with tasks completing
// at 50-90% of their WCET and compares three runtime strategies:
//
//  1. run at the static level and idle through the extra slack,
//  2. run at the static level and *sleep* through it (PS),
//  3. greedily reclaim the slack by slowing down later tasks (the online
//     strategy of Zhu et al., cited as [1] by the paper).
//
// It also writes a Chrome trace of the reclaimed execution for visual
// inspection in chrome://tracing or https://ui.perfetto.dev.
//
// Run with: go run ./examples/runtime
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"lamps"
)

func main() {
	g, _ := lamps.MPEG1Fig9()
	m := lamps.Default70nm()
	// A 45 fps requirement: tight enough that the static plan must run above
	// the critical frequency, leaving headroom for online reclamation.
	deadline := 15.0 / 45

	// Static plan: the LAMPS+PS configuration.
	plan, err := lamps.LAMPSPS(g, lamps.Config{Model: m, Deadline: deadline})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static plan: %s\n", plan)
	fmt.Printf("planned (WCET) energy: %.4g J\n\n", plan.TotalEnergy())

	// Actual execution times: uniformly 50-90% of WCET, fixed seed.
	rng := rand.New(rand.NewSource(2))
	speedup := make([]float64, g.NumTasks())
	for v := range speedup {
		speedup[v] = 0.5 + 0.4*rng.Float64()
	}

	type strategy struct {
		name string
		opts lamps.SimOptions
	}
	base := lamps.SimOptions{Level: plan.Level, DeadlineSec: deadline, Speedup: speedup}
	strategies := []strategy{
		{"idle through slack", base},
		{"sleep through slack", withPS(base)},
		{"reclaim slack (online DVS)", withReclaim(withPS(base))},
	}
	var reclaimed *lamps.SimTrace
	for _, st := range strategies {
		tr, err := lamps.Simulate(plan.Schedule, m, st.opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s energy %.4g J  (%.1f%% of plan), makespan %.4g s, %d shutdowns, deadline met: %v\n",
			st.name, tr.Breakdown.Total(), 100*tr.Breakdown.Total()/plan.TotalEnergy(),
			tr.MakespanSec, tr.Breakdown.Shutdowns, tr.DeadlineMet)
		if st.opts.Reclaim {
			reclaimed = tr
		}
	}

	// How far did reclamation slow individual frames down?
	counts := map[float64]int{}
	for _, lvl := range reclaimed.LevelOf {
		counts[lvl.Vdd]++
	}
	fmt.Printf("\nreclaimed run, frames per operating point:")
	for _, lvl := range m.Levels() {
		if c := counts[lvl.Vdd]; c > 0 {
			fmt.Printf("  %.2fV x%d", lvl.Vdd, c)
		}
	}
	fmt.Println()

	const traceFile = "mpeg-runtime-trace.json"
	f, err := os.Create(traceFile)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := reclaimed.WriteChromeTrace(f, "MPEG-1 online reclamation"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s — open it in chrome://tracing to see the timeline\n", traceFile)
}

func withPS(o lamps.SimOptions) lamps.SimOptions      { o.PS = true; return o }
func withReclaim(o lamps.SimOptions) lamps.SimOptions { o.Reclaim = true; return o }
