// Quickstart: build a small task graph, schedule it with every approach and
// compare energies.
//
// The graph is the paper's running example (Fig. 4a): five tasks with a
// fork-join structure. We use the coarse-grain scaling (one weight unit =
// 1 ms at maximum frequency) and a deadline of 1.5x the critical path, the
// tightest setting of the paper's evaluation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lamps"
)

func main() {
	b := lamps.NewGraphBuilder("fig4a")
	t1 := b.AddTask(2 * lamps.Millisecond)
	t2 := b.AddTask(6 * lamps.Millisecond)
	t3 := b.AddTask(4 * lamps.Millisecond)
	t4 := b.AddTask(4 * lamps.Millisecond)
	t5 := b.AddTask(2 * lamps.Millisecond)
	b.AddEdge(t1, t2)
	b.AddEdge(t1, t3)
	b.AddEdge(t1, t4)
	b.AddEdge(t2, t5)
	b.AddEdge(t3, t5)
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("task graph %q: %d tasks, critical path %d cycles, parallelism %.1f\n\n",
		g.Name(), g.NumTasks(), g.CriticalPathLength(), g.Parallelism())

	cfg := lamps.DeadlineFactor(g, nil, 1.5)
	fmt.Printf("deadline: %.4g s (1.5x the critical path at 3.1 GHz)\n\n", cfg.Deadline)

	var baseline float64
	for _, approach := range lamps.Approaches() {
		r, err := lamps.Run(approach, g, cfg)
		if err != nil {
			log.Fatalf("%s: %v", approach, err)
		}
		if approach == lamps.ApproachSS {
			baseline = r.TotalEnergy()
		}
		fmt.Printf("%-9s %.4g J  (%.1f%% of S&S)\n",
			approach, r.TotalEnergy(), 100*r.TotalEnergy()/baseline)
	}

	// Show the winning schedule: LAMPS uses 2 processors at a higher
	// frequency instead of 3 at a lower one (the paper's Fig. 7a).
	r, err := lamps.LAMPS(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLAMPS chose %d processor(s) at Vdd=%.2f V:\n%s",
		r.NumProcs, r.Level.Vdd, r.Schedule)
}
