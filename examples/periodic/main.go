// Periodic real-time task sets: most of the paper's related work (Jejurikar
// et al., Quan et al., Lee et al.) uses independent periodic tasks with
// deadlines rather than DAGs. Section 3.1 notes that the frame-based
// paradigm of Liberato et al. translates that model into this library's:
// one hyperperiod becomes a frame DAG whose jobs carry release times and
// absolute deadlines.
//
// This example builds a small avionics-style task set, translates it, and
// searches for the energy-minimal processor count and operating point — the
// LAMPS idea applied to the periodic model. It then shows the trade-off the
// paper is about: forcing a single processor requires a high frequency,
// while two processors near the critical frequency consume less despite
// doubling the leaking hardware, provided shutdown is available.
//
// Run with: go run ./examples/periodic
package main

import (
	"fmt"
	"log"

	"lamps"
)

func main() {
	m := lamps.Default70nm()

	// Periods in cycles at 3.1 GHz: 2 ms, 4 ms, 8 ms (harmonic).
	set := lamps.NewPeriodicSet()
	tasks := []lamps.PeriodicTask{
		{Name: "attitude", WCET: 2_480_000, Period: 6_200_000},                       // 40% at fmax
		{Name: "nav", WCET: 3_720_000, Period: 12_400_000},                           // 30%
		{Name: "telemetry", WCET: 4_960_000, Period: 24_800_000},                     // 20%
		{Name: "logging", WCET: 2_480_000, Period: 24_800_000, Deadline: 12_400_000}, // 10%, constrained deadline
	}
	for _, t := range tasks {
		if err := set.Add(t); err != nil {
			log.Fatal(err)
		}
	}
	h, err := set.Hyperperiod()
	if err != nil {
		log.Fatal(err)
	}
	g, _, _, err := set.FrameDAG()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task set: %d tasks, utilization %.0f%% at fmax, hyperperiod %.1f ms\n",
		set.Len(), 100*set.Utilization(), float64(h)/3.1e6)
	fmt.Printf("frame DAG: %d jobs per hyperperiod, %d precedence edges\n\n",
		g.NumTasks(), g.NumEdges())

	report := func(label string, ps bool, maxProcs int) {
		plan, err := set.Schedule(m, ps, maxProcs)
		if err != nil {
			fmt.Printf("%-34s infeasible: %v\n", label, err)
			return
		}
		fmt.Printf("%-34s %.4g J/hyperperiod on %d proc(s) at %.2f V (%.2f fmax), %d shutdowns\n",
			label, plan.EnergyJ, plan.NumProcs, plan.Level.Vdd, plan.Level.Norm, plan.Shutdowns)
	}
	report("free choice, with shutdown:", true, 0)
	report("free choice, no shutdown:", false, 0)
	report("forced single processor, PS:", true, 1)
	report("forced two processors, PS:", true, 2)

	fmt.Println("\nThe energy-minimal plan balances processor count, frequency and")
	fmt.Println("shutdown exactly as LAMPS+PS does for DAGs with one deadline.")
}
