// Kahn Process Network scheduling (the paper's Section 3.1, Fig. 1): model
// a three-stage streaming application as a KPN, unroll it into a task DAG
// with per-copy throughput deadlines, and schedule it with LS-EDF under
// those deadlines.
//
// The network is the paper's Fig. 1: T1 and T3 process two input streams;
// T2 combines their results; T3 additionally consumes T2's previous result
// (a feedback channel with one initial token).
//
// Run with: go run ./examples/kpn
package main

import (
	"fmt"
	"log"

	"lamps"
)

func main() {
	// Per-firing costs in cycles at 3.1 GHz: ~0.32 ms, ~0.65 ms, ~0.48 ms.
	net := lamps.NewKPN()
	t1 := net.AddProcess(lamps.KPNProcess{Name: "T1", Cycles: 1_000_000})
	t2 := net.AddProcess(lamps.KPNProcess{Name: "T2", Cycles: 2_000_000, Output: true})
	t3 := net.AddProcess(lamps.KPNProcess{Name: "T3", Cycles: 1_500_000})
	net.AddChannel(lamps.KPNChannel{From: t1, To: t2})
	net.AddChannel(lamps.KPNChannel{From: t3, To: t2})
	net.AddChannel(lamps.KPNChannel{From: t2, To: t3, Delay: 1})

	// Required throughput: one output every 2.5 ms => period of 7.75e6
	// cycles at fmax; first output due after 3 periods.
	const period = 7_750_000
	const firstDeadline = 3 * period
	const copies = 8

	g, deadlines, err := net.Unroll(copies, firstDeadline, period)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unrolled %d copies: %d tasks, %d edges, critical path %d cycles\n\n",
		copies, g.NumTasks(), g.NumEdges(), g.CriticalPathLength())

	m := lamps.Default70nm()
	for _, nprocs := range []int{1, 2, 3} {
		s, err := lamps.ListEDFWithDeadlines(g, nprocs, deadlines)
		if err != nil {
			log.Fatal(err)
		}
		missed := 0
		for v, d := range deadlines {
			if d != lamps.NoDeadline && s.Finish[v] > d {
				missed++
			}
		}
		fmt.Printf("%d processor(s): makespan %d cycles, %d of %d output deadlines missed at fmax\n",
			nprocs, s.Makespan, missed, copies)
		if missed > 0 {
			continue
		}
		// At fmax every deadline is met; check how far the frequency can be
		// lowered before an output deadline is violated, then report the
		// energy with shutdown at that level. The horizon is the last
		// output's deadline.
		var slowest *lamps.Level
		for _, lvl := range m.Levels() {
			stretch := m.FMax() / lvl.Freq
			ok := true
			for v, d := range deadlines {
				if d != lamps.NoDeadline && float64(s.Finish[v])*stretch > float64(d) {
					ok = false
					break
				}
			}
			if ok {
				l := lvl
				slowest = &l
			}
		}
		if slowest == nil {
			continue
		}
		// The machine stays on until the last output deadline or until the
		// stretched schedule completes, whichever is later.
		var lastDeadline int64
		for _, d := range deadlines {
			if d != lamps.NoDeadline && d > lastDeadline {
				lastDeadline = d
			}
		}
		horizon := float64(lastDeadline) / m.FMax()
		if mk := float64(s.Makespan) / slowest.Freq; mk > horizon {
			horizon = mk
		}
		bd, err := lamps.EvaluateEnergy(s, m, *slowest, horizon, lamps.EnergyOptions{PS: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   slowest feasible level: Vdd=%.2f V (%.2f fmax)  energy %.4g J (%d shutdowns)\n",
			slowest.Vdd, slowest.Norm, bd.Total(), bd.Shutdowns)
	}
	fmt.Println("\nnote: per-copy deadlines make EDF prioritise early copies; uniform")
	fmt.Println("stretching is limited by the tightest output deadline, not the makespan.")
}
