// Sensitivity study: how the savings of the leakage-aware heuristics depend
// on the average amount of parallelism, the task granularity and the
// deadline — the relationships behind the paper's Figs. 10-13.
//
// The example synthesises graphs with controlled parallelism using the
// profile generator, then sweeps deadline factors and grain sizes, printing
// the energy of each approach relative to the S&S baseline.
//
// Run with: go run ./examples/sweep
package main

import (
	"fmt"
	"log"

	"lamps"
)

func main() {
	fmt.Println("Savings vs S&S as a function of parallelism, grain and deadline")
	fmt.Println("(100% = the S&S baseline energy; lower is better)")

	grains := []struct {
		name  string
		grain lamps.Grain
	}{
		{"coarse (1 weight = 1 ms)", lamps.Coarse},
		{"fine (1 weight = 10 us)", lamps.Fine},
	}
	for _, gr := range grains {
		fmt.Printf("\n=== %s ===\n", gr.name)
		for _, parallelism := range []int{2, 6, 16} {
			// Build a 120-task graph with the requested parallelism: total
			// work = parallelism x critical path.
			profile := lamps.GraphProfile{
				Name:         fmt.Sprintf("par%d", parallelism),
				Nodes:        120,
				Edges:        300,
				CriticalPath: 1000,
				TotalWork:    int64(parallelism) * 1000,
			}
			unit, err := profile.Generate(7)
			if err != nil {
				log.Fatal(err)
			}
			g := mustScale(unit, gr.grain)
			fmt.Printf("\nparallelism %-2d (width %d):\n", parallelism, g.MaxWidth())
			fmt.Printf("  %-8s", "deadline")
			for _, a := range lamps.Approaches() {
				fmt.Printf("  %-9s", a)
			}
			fmt.Println()
			for _, factor := range []float64{1.5, 2, 4, 8} {
				cfg := lamps.DeadlineFactor(g, nil, factor)
				fmt.Printf("  %-8s", fmt.Sprintf("%gx CPL", factor))
				var base float64
				for _, a := range lamps.Approaches() {
					r, err := lamps.Run(a, g, cfg)
					if err != nil {
						fmt.Printf("  %-9s", "infeas")
						continue
					}
					if a == lamps.ApproachSS {
						base = r.TotalEnergy()
					}
					fmt.Printf("  %-9s", fmt.Sprintf("%.1f%%", 100*r.TotalEnergy()/base))
				}
				fmt.Println()
			}
		}
	}
	fmt.Println("\nObservations (matching the paper):")
	fmt.Println(" - low parallelism punishes S&S hardest: idle processors leak;")
	fmt.Println(" - savings grow with looser deadlines (more room to drop processors);")
	fmt.Println(" - shutdown (+PS) helps mostly for coarse grains, where idle gaps")
	fmt.Println("   exceed the ~1.7M-cycle break-even of Fig. 3.")
}

func mustScale(g *lamps.Graph, grain lamps.Grain) *lamps.Graph {
	return grain.Scale(g)
}
