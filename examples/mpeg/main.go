// Real-time MPEG-1 encoding (the paper's Section 5.3): schedule a 15-frame
// group of pictures under a 30 frames/second deadline and study how the
// energy of each approach changes as the real-time requirement is varied
// from 24 to 60 frames per second.
//
// Run with: go run ./examples/mpeg
package main

import (
	"fmt"
	"log"

	"lamps"
)

func main() {
	g, deadline := lamps.MPEG1Fig9()
	fmt.Printf("MPEG-1 GOP %q: %d frames, %d dependences\n", g.Name(), g.NumTasks(), g.NumEdges())
	fmt.Printf("total work %.3g Gcycles, critical path %.3g Gcycles\n\n",
		float64(g.TotalWork())/1e9, float64(g.CriticalPathLength())/1e9)

	// The paper's Table 3: 30 fps (0.5 s per 15-frame GOP).
	fmt.Printf("--- 30 fps (deadline %.2f s), the paper's Table 3 ---\n", deadline)
	report(g, lamps.Config{Deadline: deadline})

	// Sensitivity: tighter and looser real-time requirements.
	for _, fps := range []float64{24, 40, 50, 60} {
		d := 15.0 / fps
		fmt.Printf("\n--- %.0f fps (deadline %.3f s) ---\n", fps, d)
		report(g, lamps.Config{Deadline: d})
	}
}

func report(g *lamps.Graph, cfg lamps.Config) {
	var baseline float64
	for _, approach := range lamps.Approaches() {
		r, err := lamps.Run(approach, g, cfg)
		if err != nil {
			fmt.Printf("%-9s infeasible: %v\n", approach, err)
			continue
		}
		if approach == lamps.ApproachSS {
			baseline = r.TotalEnergy()
		}
		procs := "-"
		if r.Schedule != nil {
			procs = fmt.Sprint(r.NumProcs)
		}
		fmt.Printf("%-9s %.4g J on %s procs at %.2f V (%5.1f%% of S&S, %d shutdowns)\n",
			approach, r.TotalEnergy(), procs, r.Level.Vdd,
			100*r.TotalEnergy()/baseline, r.Energy.Shutdowns)
	}
	if baseline == 0 {
		log.Println("S&S infeasible at this deadline")
	}
}
