package lamps

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

// TestFacadeQuickstart exercises the README quick-start path through the
// public API only.
func TestFacadeQuickstart(t *testing.T) {
	b := NewGraphBuilder("pipeline")
	t1 := b.AddTask(2 * Millisecond)
	t2 := b.AddTask(6 * Millisecond)
	t3 := b.AddTask(4 * Millisecond)
	b.AddEdge(t1, t2)
	b.AddEdge(t1, t3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DeadlineFactor(g, nil, 2)
	best, err := LAMPSPS(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := ScheduleAndStretch(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if best.TotalEnergy() > ss.TotalEnergy() {
		t.Errorf("LAMPS+PS (%g J) worse than S&S (%g J)", best.TotalEnergy(), ss.TotalEnergy())
	}
	if !strings.Contains(best.String(), "LAMPS+PS") {
		t.Errorf("Result.String() = %q", best.String())
	}
}

func TestFacadeApproachesAndRun(t *testing.T) {
	g, deadline := MPEG1Fig9()
	cfg := Config{Deadline: deadline}
	names := Approaches()
	if len(names) != 6 {
		t.Fatalf("Approaches() = %v", names)
	}
	for _, a := range names {
		r, err := Run(a, g, cfg)
		if err != nil {
			t.Errorf("Run(%s): %v", a, err)
			continue
		}
		if r.TotalEnergy() <= 0 {
			t.Errorf("Run(%s): non-positive energy", a)
		}
	}
	// Mutating the returned slice must not corrupt the package state.
	names[0] = "corrupted"
	if Approaches()[0] == "corrupted" {
		t.Error("Approaches() exposes internal state")
	}
}

func TestFacadeSTGRoundTrip(t *testing.T) {
	b := NewGraphBuilder("io")
	u := b.AddTask(10)
	v := b.AddTask(20)
	b.AddEdge(u, v)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSTG(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSTG(&buf, "io")
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalWork() != 30 || back.NumEdges() != 1 {
		t.Errorf("round trip lost data: work=%d edges=%d", back.TotalWork(), back.NumEdges())
	}
}

func TestFacadeSchedulingAndEnergy(t *testing.T) {
	g, _ := MPEG1Fig9()
	s, err := ListEDF(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	m := Default70nm()
	bd, err := EvaluateEnergy(s, m, m.CriticalLevel(),
		float64(s.Makespan)/m.CriticalLevel().Freq, EnergyOptions{PS: true})
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total() <= 0 {
		t.Error("non-positive energy")
	}
}

func TestFacadeKPN(t *testing.T) {
	n := NewKPN()
	a := n.AddProcess(KPNProcess{Name: "src", Cycles: 1000})
	z := n.AddProcess(KPNProcess{Name: "sink", Cycles: 2000, Output: true})
	n.AddChannel(KPNChannel{From: a, To: z})
	g, dl, err := n.Unroll(3, 100000, 50000)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ListEDFWithDeadlines(g, 2, dl)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeMPEGCustomGOP(t *testing.T) {
	g, err := MPEG1GOP("IBBP", map[byte]int64{'I': 100, 'B': 300, 'P': 200})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 4 {
		t.Errorf("NumTasks = %d", g.NumTasks())
	}
}

func TestFacadeEnergySaving(t *testing.T) {
	if got := EnergySaving(10, 6, 5); got != 0.8 {
		t.Errorf("EnergySaving = %g", got)
	}
}

func TestFacadeGrainConstants(t *testing.T) {
	if Coarse == Fine {
		t.Error("grain constants collide")
	}
	p := GraphProfile{Name: "x", Nodes: 20, Edges: 40, CriticalPath: 500, TotalWork: 1500}
	g, err := p.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	if g.CriticalPathLength() != 500 {
		t.Errorf("CPL = %d", g.CriticalPathLength())
	}
}

func TestFacadeSimulate(t *testing.T) {
	g, deadline := MPEG1Fig9()
	plan, err := LAMPSPS(g, Config{Deadline: deadline})
	if err != nil {
		t.Fatal(err)
	}
	m := Default70nm()
	tr, err := Simulate(plan.Schedule, m, SimOptions{
		Level: plan.Level, PS: true, DeadlineSec: deadline,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.DeadlineMet {
		t.Error("WCET simulation misses the deadline")
	}
	// Simulated energy matches the planned energy (up to horizon rounding).
	rel := tr.Breakdown.Total()/plan.TotalEnergy() - 1
	if rel > 1e-6 || rel < -1e-6 {
		t.Errorf("simulated energy off by %g relative", rel)
	}
}

func TestFacadeSlackReclaimAndIslands(t *testing.T) {
	g, deadline := MPEG1Fig9()
	cfg := Config{Deadline: deadline}
	uniform, err := LAMPSPS(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	isl, err := VoltageIslands(g, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := SlackReclaimDVS(g, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := LimitMF(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Flexibility ordering: uniform >= islands >= per-task >= LIMIT-MF is
	// not guaranteed pairwise for greedy heuristics, but each must sit
	// between LIMIT-MF and the uniform solution here.
	for name, e := range map[string]float64{
		"islands": isl.TotalEnergy(),
		"pertask": pt.TotalEnergy(),
	} {
		if e > uniform.TotalEnergy()*(1+1e-6) {
			t.Errorf("%s (%g J) worse than uniform (%g J)", name, e, uniform.TotalEnergy())
		}
		if e < mf.TotalEnergy()*(1-1e-9) {
			t.Errorf("%s (%g J) beats LIMIT-MF (%g J)", name, e, mf.TotalEnergy())
		}
	}
}

func TestFacadePeriodic(t *testing.T) {
	set := NewPeriodicSet()
	if err := set.Add(PeriodicTask{Name: "a", WCET: 1_000_000, Period: 4_000_000}); err != nil {
		t.Fatal(err)
	}
	if err := set.Add(PeriodicTask{Name: "b", WCET: 2_000_000, Period: 8_000_000}); err != nil {
		t.Fatal(err)
	}
	plan, err := set.Schedule(Default70nm(), true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.EnergyJ <= 0 || plan.NumProcs < 1 {
		t.Errorf("bad plan: %+v", plan)
	}
}

// TestFacadeEngine drives the exported Engine API: a cancellable run with a
// progress observer and a shared worker pool, identical to the plain call.
func TestFacadeEngine(t *testing.T) {
	g, deadline := MPEG1Fig9()
	cfg := Config{Model: Default70nm(), Deadline: deadline}
	plain, err := LAMPSPSCtx(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	obs := &facadeObserver{}
	eng := Engine{Config: cfg, Observer: obs, Pool: NewWorkerPool(4)}
	r, err := eng.Run(context.Background(), ApproachLAMPSPS, g)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalEnergy() != plain.TotalEnergy() || r.Stats != plain.Stats {
		t.Errorf("engine run diverged: %g J %+v vs %g J %+v",
			r.TotalEnergy(), r.Stats, plain.TotalEnergy(), plain.Stats)
	}
	if obs.phases == 0 || obs.schedules != r.Stats.SchedulesBuilt {
		t.Errorf("observer saw %d phases, %d builds; Stats say %d builds",
			obs.phases, obs.schedules, r.Stats.SchedulesBuilt)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := LAMPSPSCtx(ctx, g, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled LAMPSPSCtx: err = %v", err)
	}
}

type facadeObserver struct {
	phases    int
	schedules int
}

func (o *facadeObserver) OnPhase(string) { o.phases++ }

func (o *facadeObserver) OnScheduleBuilt(int, int64) { o.schedules++ }

func (o *facadeObserver) OnLevelEvaluated(Level, EnergyBreakdown) {}
