# Build, test and verification entry points. `make ci` is the gate every
# change must pass: vet, build, the full test suite under the race detector
# (the serving layer is concurrent, so -race is not optional), and the fuzz
# seed corpora as plain tests.

GO ?= go

.PHONY: all build vet test race fuzz-smoke bench alloc-gate serve ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race detector gates every serving-layer change; the whole tree runs
# under it, not just internal/server.
race:
	$(GO) test -race ./...

# Run the pinned fuzz seed corpora as regular tests (no fuzzing engine, no
# new inputs — a deterministic smoke check of the parsers).
fuzz-smoke:
	$(GO) test -run='^Fuzz' ./internal/stg ./internal/sched

# Micro-benchmarks plus the two benchmark harnesses: sweepbench writes
# per-cell latency percentiles and cold/warm sweep wall times to
# BENCH_sweep.json; corebench writes serial-vs-parallel engine wall times,
# speedups and before/after kernel micro-benchmarks (ns/op + allocs/op) to
# BENCH_core.json (and fails if the parallel engine's results diverge from
# the serial ones). -benchmem so every benchmark line carries allocs/op.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' . ./internal/core ./internal/sched ./internal/energy
	$(GO) run ./cmd/sweepbench -out BENCH_sweep.json
	$(GO) run ./cmd/corebench -out BENCH_core.json

# The steady-state allocation gate: the reused scheduling kernel and the
# gap-profile evaluation must not allocate at all once their buffers are
# warm. CI fails the build if either test reports >0 allocs/op.
alloc-gate:
	$(GO) test -run 'TestScheduleIntoSteadyStateZeroAlloc' -count=1 -v ./internal/sched
	$(GO) test -run 'TestGapProfileEvaluateZeroAlloc' -count=1 -v ./internal/energy

# Run the scheduling service locally.
serve:
	$(GO) run ./cmd/lampsd -addr :8080

ci: vet build race fuzz-smoke
