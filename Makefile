# Build, test and verification entry points. `make ci` is the gate every
# change must pass: vet, build, the full test suite under the race detector
# (the serving layer is concurrent, so -race is not optional), and the fuzz
# seed corpora as plain tests.

GO ?= go

.PHONY: all build vet test race fuzz-smoke smoke verify-campaign bench alloc-gate store-gate hetero-gate ft-gate serve ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race detector gates every serving-layer change; the whole tree runs
# under it, not just internal/server.
race:
	$(GO) test -race ./...

# Run the pinned fuzz seed corpora as regular tests (no fuzzing engine, no
# new inputs — a deterministic smoke check of the parsers).
fuzz-smoke:
	$(GO) test -run='^Fuzz' ./internal/stg ./internal/sched ./internal/power

# Build-and-run smoke: every example and every command executes end to end
# with quick arguments, so a main() that compiles but crashes on startup
# cannot slip through the unit-test gate. The benchmark harnesses write
# their reports into a scratch directory (a smoke run must not clobber the
# checked-in BENCH_*.json workflow), and lampsd runs for two seconds and has
# to drain cleanly on SIGINT.
smoke:
	@set -e; for ex in examples/*/; do \
		ls $$ex*.go >/dev/null 2>&1 || continue; \
		echo "== $$ex"; $(GO) run ./$$ex >/dev/null; done
	$(GO) run ./cmd/lamps -random 24 -seed 7 >/dev/null
	$(GO) run ./cmd/stggen -nodes 16 -method mix >/dev/null
	$(GO) run ./cmd/experiments -run fig3 -quick >/dev/null
	$(GO) run ./cmd/verifycamp -n 10 >/dev/null
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/sweepbench -out $$tmp/sweep.json >/dev/null; \
	$(GO) run ./cmd/corebench -repeat 1 -out $$tmp/core.json >/dev/null; \
	$(GO) run ./cmd/loadgen -smoke -out $$tmp/loadgen.json >/dev/null; \
	$(GO) build -o $$tmp/lampsd ./cmd/lampsd; \
	echo "== lampsd (2s, SIGINT drain)"; \
	timeout --preserve-status -s INT 2 $$tmp/lampsd -addr 127.0.0.1:0 2>/dev/null; \
	echo "== lampsd warm restart (-store-dir: populate, drain, restart, byte-identical)"; \
	req='{"approach":"lamps+ps","deadline_factor":2,"graph":{"tasks":[{"weight_cycles":3100000},{"weight_cycles":6200000},{"weight_cycles":4650000}],"edges":[[0,1],[0,2]]}}'; \
	getaddr() { sed -n 's/.*"msg":"listening","addr":"\([^"]*\)".*/\1/p' "$$1" | head -n1; }; \
	$$tmp/lampsd -addr 127.0.0.1:0 -store-dir $$tmp/store 2>$$tmp/log1 & pid=$$!; \
	addr=; for i in $$(seq 100); do addr=$$(getaddr $$tmp/log1); [ -n "$$addr" ] && break; sleep 0.1; done; \
	[ -n "$$addr" ] || { echo "lampsd did not start"; cat $$tmp/log1; exit 1; }; \
	curl -sf -d "$$req" "http://$$addr/v1/schedule" -o $$tmp/resp1.json; \
	kill -INT $$pid; wait $$pid; \
	$$tmp/lampsd -addr 127.0.0.1:0 -store-dir $$tmp/store 2>$$tmp/log2 & pid=$$!; \
	addr=; for i in $$(seq 100); do addr=$$(getaddr $$tmp/log2); [ -n "$$addr" ] && break; sleep 0.1; done; \
	[ -n "$$addr" ] || { echo "lampsd did not restart"; cat $$tmp/log2; exit 1; }; \
	src=$$(curl -sf -D - -d "$$req" "http://$$addr/v1/schedule" -o $$tmp/resp2.json | tr -d '\r' | sed -n 's/^X-Lamps-Cache: //p'); \
	curl -sf "http://$$addr/metrics" | grep -q '^lampsd_cache_hits_total 1' || { echo "warm restart: no cache hit recorded"; exit 1; }; \
	kill -INT $$pid; wait $$pid; \
	[ "$$src" = "hit" ] || { echo "warm restart: cache header '$$src', want hit"; exit 1; }; \
	cmp -s $$tmp/resp1.json $$tmp/resp2.json || { echo "warm restart: response bytes differ across restart"; exit 1; }

# The independent-verifier campaign: 200 random graphs re-checked from first
# principles (schedule legality, energy accounting, cross-heuristic and
# metamorphic invariants, mutation self-test). Deterministic — same seeds in
# CI and locally. The nightly workflow runs `verifycamp -long` instead.
verify-campaign:
	$(GO) run ./cmd/verifycamp -n 200
	$(GO) run ./cmd/verifycamp -faults -n 8 -factors 3,6 -mutate-every 2

# Micro-benchmarks plus the three benchmark harnesses: sweepbench writes
# per-cell latency percentiles and cold/warm sweep wall times to
# BENCH_sweep.json; corebench writes serial-vs-parallel engine wall times,
# speedups and before/after kernel micro-benchmarks (ns/op + allocs/op) to
# BENCH_core.json (and fails if the parallel engine's results diverge from
# the serial ones); loadgen drives the batch execution layer with a mixed
# closed/open-loop workload and writes throughput + latency percentiles to
# BENCH_loadgen.json, failing (exit 2) if the 4-worker closed-loop
# throughput drops below the 1-worker rate on a multicore host. -benchmem so
# every benchmark line carries allocs/op.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' . ./internal/core ./internal/sched ./internal/energy
	$(GO) run ./cmd/sweepbench -out BENCH_sweep.json
	$(GO) run ./cmd/corebench -out BENCH_core.json
	$(GO) run ./cmd/loadgen -out BENCH_loadgen.json

# The steady-state allocation gate: the reused scheduling kernel and the
# gap-profile evaluation must not allocate at all once their buffers are
# warm; a warm RunBatch request must stay within its 8-alloc arena-backed
# per-request budget; and a warm /v1/schedule cache hit must stay within its
# handler-layer bound (decode + graph build + digest only — never a
# re-render). These budgets are the strict (non--race) ones; the same tests
# run widened under `make race`. CI fails the build if any test reports
# allocations over its bound.
alloc-gate:
	$(GO) test -run 'TestScheduleIntoSteadyStateZeroAlloc' -count=1 -v ./internal/sched
	$(GO) test -run 'TestGapProfileEvaluateZeroAlloc' -count=1 -v ./internal/energy
	$(GO) test -run 'TestRunBatchSteadyStateZeroAlloc' -count=1 -v ./internal/core
	$(GO) test -run 'TestScheduleWarmCacheHitAllocBound' -count=1 -v ./internal/server

# The heterogeneous-platform gate. The parity half is the tentpole
# behaviour-preservation contract: an N-identical-core Platform must produce
# results byte-identical to the legacy single-model configuration at every
# layer — kernel placements, energy breakdowns bit for bit, engine results
# and stats. The invariant half holds the genuinely heterogeneous path to
# the independent verifier (scaled-slot legality, first-principles energy,
# LIMIT bounds, the HP-core feasibility separation) and to the platform
# digest/serving contract. Under -race: the engine evaluates platform
# candidates from many goroutines.
hetero-gate:
	$(GO) test -race -run 'TestScheduleIntoPlatformHomogeneousParity|TestEvaluatePointHomogeneousParity|TestMinFeasiblePointHomogeneousParity' -count=1 -v ./internal/sched ./internal/energy
	$(GO) test -race -run 'TestHomogeneousPlatformParity|TestHeterogeneous|TestHetero' -count=1 -v ./internal/core
	$(GO) test -race -run 'TestPlatformEnergyParity|TestSelfTestPlatformDetectsEveryClass' -count=1 -v ./internal/verify
	$(GO) test -race -run 'TestPlatform' -count=1 -v ./internal/graphhash
	$(GO) test -race -run 'TestSchedulePlatform' -count=1 -v ./internal/server

# The persistence and overload gate: the segment-log store must round-trip
# byte-identical records, drop truncated or corrupt tails at every byte
# boundary, and skip stale-stamp segments; the serving layer must warm-load
# persisted results across a restart and derive Retry-After from observed
# queue waits rather than a constant. Run by name with -count=1 so the
# crash-recovery sweep executes on every invocation, and under -race where
# the serving layer is involved.
store-gate:
	$(GO) test -run 'TestRoundTrip|TestTruncationAtEveryByteBoundary|TestChecksumMismatchDropsTail|TestMidSegmentCorruptionKeepsPrefixOnly|TestStaleStampSkipsSegment' -count=1 -v ./internal/store
	$(GO) test -race -run 'TestPersistenceAcrossServers|TestPersistenceSkipsStaleStamp|TestRetryAfterReflectsQueueWait|TestQueueFullReturns429' -count=1 -v ./internal/server
	$(GO) test -race -run 'TestWarmRestartServesPersistedResults' -count=1 -v ./cmd/lampsd

# The fault-tolerance gate. The parity half is the tentpole
# behaviour-preservation contract: a Faults block with K=0 must be
# byte-identical to no block at all across all six approaches, homogeneous
# and heterogeneous, end to end through the serving layer. The invariant
# half holds the K≥1 path to the independent verifier — backup-plan
# legality, bit-for-bit FT energy, simulator/verifier agreement on replayed
# fault patterns, detection of every backup corruption class — and to the
# digest/serving contract (distinct keys per K and policy, byte-stable
# bodies through cache, singleflight and a store warm restart, under -race).
ft-gate:
	$(GO) test -run 'TestPlanBackups|TestBackupPlan' -count=1 -v ./internal/sched
	$(GO) test -run 'TestResetFT|TestResetPlatformFT' -count=1 -v ./internal/energy
	$(GO) test -run 'TestSelfTestFaults|TestFaultPlan' -count=1 -v ./internal/verify
	$(GO) test -run 'TestReplayFaults' -count=1 -v ./internal/sim
	$(GO) test -race -run 'TestFaults' -count=1 -v ./internal/core ./internal/graphhash ./internal/verify/campaign
	$(GO) test -race -run 'TestFaults' -count=1 -v ./internal/server

# Run the scheduling service locally.
serve:
	$(GO) run ./cmd/lampsd -addr :8080

ci: vet build race fuzz-smoke
