package lamps

import (
	"testing"

	"lamps/internal/experiments"
)

// Each benchmark regenerates one figure or table of the paper's evaluation
// (Section 5) end to end: workload generation, scheduling search, energy
// accounting and table rendering. The reduced QuickConfig workload is used
// so a full -bench=. run stays fast; cmd/experiments runs the
// publication-sized configuration.

func benchExperiment(b *testing.B, name string, cfg experiments.Config) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(name, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables produced")
		}
	}
}

// BenchmarkFig2PowerCurve regenerates the power and energy-per-cycle curves
// (Fig. 2a/2b).
func BenchmarkFig2PowerCurve(b *testing.B) {
	benchExperiment(b, "fig2", experiments.QuickConfig())
}

// BenchmarkFig3Breakeven regenerates the shutdown break-even curve (Fig. 3).
func BenchmarkFig3Breakeven(b *testing.B) {
	benchExperiment(b, "fig3", experiments.QuickConfig())
}

// BenchmarkFig6ProcessorSweep regenerates the energy-versus-processors sweep
// over fpppp/robot/sparse (Fig. 6).
func BenchmarkFig6ProcessorSweep(b *testing.B) {
	benchExperiment(b, "fig6", experiments.QuickConfig())
}

// BenchmarkFig10Coarse regenerates the coarse-grain relative energy charts
// (Fig. 10a-d).
func BenchmarkFig10Coarse(b *testing.B) {
	benchExperiment(b, "fig10", experiments.QuickConfig())
}

// BenchmarkFig11Fine regenerates the fine-grain relative energy charts
// (Fig. 11a-d).
func BenchmarkFig11Fine(b *testing.B) {
	benchExperiment(b, "fig11", experiments.QuickConfig())
}

// BenchmarkFig12Scatter regenerates the coarse-grain parallelism scatter
// (Fig. 12).
func BenchmarkFig12Scatter(b *testing.B) {
	benchExperiment(b, "fig12", experiments.QuickConfig())
}

// BenchmarkFig13Scatter regenerates the fine-grain parallelism scatter
// (Fig. 13).
func BenchmarkFig13Scatter(b *testing.B) {
	benchExperiment(b, "fig13", experiments.QuickConfig())
}

// BenchmarkTable2Stats regenerates the benchmark characteristics (Table 2).
func BenchmarkTable2Stats(b *testing.B) {
	benchExperiment(b, "table2", experiments.QuickConfig())
}

// BenchmarkTable3MPEG regenerates the MPEG-1 comparison (Table 3).
func BenchmarkTable3MPEG(b *testing.B) {
	benchExperiment(b, "table3", experiments.QuickConfig())
}

// BenchmarkLAMPSPSMPEG measures one LAMPS+PS search on the MPEG-1 graph,
// the paper's headline workload, without harness overhead.
func BenchmarkLAMPSPSMPEG(b *testing.B) {
	g, deadline := MPEG1Fig9()
	cfg := Config{Deadline: deadline}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LAMPSPS(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
