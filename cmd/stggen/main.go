// Command stggen generates random task graphs and writes them in Standard
// Task Graph Set format, so that external tools (or this library's CLI)
// can consume them.
//
//	stggen -nodes 500 -method layered -seed 3 > graph.stg
//	stggen -profile fpppp > fpppp.stg
//	stggen -nodes 200 -method sp -out graphs/ -count 10
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"lamps/internal/dag"
	"lamps/internal/stg"
	"lamps/internal/taskgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stggen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("stggen", flag.ContinueOnError)
	var (
		nodes   = fs.Int("nodes", 100, "number of tasks")
		method  = fs.String("method", "layered", "generator: layered, gnp, sp or mix")
		profile = fs.String("profile", "", "generate a synthetic application graph: fpppp, robot or sparse")
		seed    = fs.Int64("seed", 1, "generator seed")
		count   = fs.Int("count", 1, "number of graphs to generate")
		outDir  = fs.String("out", "", "write <name>.stg files into this directory instead of stdout")
		prob    = fs.Float64("p", 0.5, "edge probability (layered and gnp)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *count < 1 {
		return fmt.Errorf("count must be positive")
	}

	for i := 0; i < *count; i++ {
		s := *seed + int64(i)
		g, err := generate(*profile, *method, *nodes, *prob, i, s)
		if err != nil {
			return err
		}
		var w io.Writer = os.Stdout
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			f, err := os.Create(filepath.Join(*outDir, fmt.Sprintf("%s-%03d.stg", g.Name(), i)))
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := stg.Write(w, g); err != nil {
			return err
		}
	}
	return nil
}

func generate(profile, method string, nodes int, p float64, i int, seed int64) (*dag.Graph, error) {
	if profile != "" {
		for _, pr := range taskgen.Table2Profiles {
			if pr.Name == profile {
				return pr.Generate(seed)
			}
		}
		return nil, fmt.Errorf("unknown profile %q (want fpppp, robot or sparse)", profile)
	}
	switch method {
	case "layered":
		return taskgen.Layered{Nodes: nodes, EdgeProb: p}.Generate(seed)
	case "gnp":
		return taskgen.OrderedGnp{Nodes: nodes, EdgeProb: p}.Generate(seed)
	case "sp":
		return taskgen.SeriesParallel{Nodes: nodes}.Generate(seed)
	case "mix":
		return taskgen.Member(nodes, i, seed)
	}
	return nil, fmt.Errorf("unknown method %q (want layered, gnp, sp or mix)", method)
}
