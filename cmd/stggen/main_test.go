package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lamps/internal/stg"
)

func TestGenerateMethods(t *testing.T) {
	for _, method := range []string{"layered", "gnp", "sp", "mix"} {
		g, err := generate("", method, 40, 0.3, 0, 7)
		if err != nil {
			t.Errorf("%s: %v", method, err)
			continue
		}
		if g.NumTasks() != 40 {
			t.Errorf("%s: %d tasks", method, g.NumTasks())
		}
	}
	if _, err := generate("", "bogus", 10, 0.5, 0, 1); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := generate("bogus", "", 10, 0.5, 0, 1); err == nil {
		t.Error("unknown profile accepted")
	}
	g, err := generate("sparse", "", 0, 0, 0, 1)
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	if g.NumTasks() != 96 {
		t.Errorf("sparse profile has %d tasks", g.NumTasks())
	}
}

func TestRunWritesParsableFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-nodes", "25", "-method", "sp", "-count", "3", "-out", dir, "-seed", "9"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("wrote %d files, want 3", len(entries))
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".stg") {
			t.Errorf("unexpected file %s", e.Name())
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		g, err := stg.Parse(f, e.Name())
		f.Close()
		if err != nil {
			t.Errorf("%s: not parsable: %v", e.Name(), err)
			continue
		}
		if g.NumTasks() != 25 {
			t.Errorf("%s: %d tasks", e.Name(), g.NumTasks())
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-count", "0"}); err == nil {
		t.Error("count 0 accepted")
	}
	if err := run([]string{"-nodes", "-1", "-out", t.TempDir()}); err == nil {
		t.Error("negative nodes accepted")
	}
}
