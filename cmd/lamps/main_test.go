package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunMPEG(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-mpeg"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"S&S", "LAMPS+PS", "LIMIT-MF", "deadline: 0.5s", "savings vs S&S"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunApp(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-app", "robot", "-factor", "4", "-grain", "fine", "-schedule"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, `graph "robot"`) {
		t.Errorf("missing graph header:\n%s", s)
	}
	if !strings.Contains(s, "best schedulable approach") {
		t.Errorf("missing schedule output")
	}
}

func TestRunRandomSingleApproach(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-random", "30", "-seed", "5", "-approach", "LAMPS"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if strings.Contains(s, "LIMIT-MF") {
		t.Errorf("single-approach run printed other approaches")
	}
	if !strings.Contains(s, "LAMPS") {
		t.Errorf("missing LAMPS row")
	}
}

func TestRunSTGFileAndDot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.stg")
	content := "2\n 0 0 0\n 1 10 1 0\n 2 20 1 1\n 3 0 1 2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-stg", path, "-factor", "2"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "2 tasks") {
		t.Errorf("unexpected header:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-stg", path, "-dot"}, &out); err != nil {
		t.Fatalf("run -dot: %v", err)
	}
	if !strings.Contains(out.String(), "digraph") {
		t.Errorf("missing DOT output")
	}
}

func TestRunTrace(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	var out bytes.Buffer
	if err := run([]string{"-mpeg", "-trace", tracePath}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	if !strings.Contains(string(data), "traceEvents") {
		t.Errorf("trace content wrong")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                           // no input
		{"-app", "nonexistent"},      // unknown app
		{"-grain", "weird", "-mpeg"}, // bad grain
		{"-stg", "/does/not/exist"},  // missing file
		{"-mpeg", "-approach", "bogus"},
		{"-mpeg", "-deadline", "0.01"}, // infeasible
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestDumpAndLoadModel(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dump-model"}, &out); err != nil {
		t.Fatalf("dump: %v", err)
	}
	if !strings.Contains(out.String(), `"vdd_step"`) {
		t.Fatalf("dump content wrong:\n%s", out.String())
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out2 bytes.Buffer
	if err := run([]string{"-mpeg", "-model", path}, &out2); err != nil {
		t.Fatalf("run with model: %v", err)
	}
	if !strings.Contains(out2.String(), "LAMPS+PS") {
		t.Errorf("model run output wrong")
	}
	// Missing and malformed model files.
	if err := run([]string{"-mpeg", "-model", "/does/not/exist"}, &out2); err == nil {
		t.Error("missing model accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-mpeg", "-model", bad}, &out2); err == nil {
		t.Error("malformed model accepted")
	}
}

func TestRunJSONExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sched.json")
	var out bytes.Buffer
	if err := run([]string{"-mpeg", "-json", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("json not written: %v", err)
	}
	if !strings.Contains(string(data), `"makespan_cycles"`) {
		t.Errorf("json content wrong")
	}
}

func TestRunExtensions(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-mpeg", "-extensions"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"VoltageIslands", "PerTask-DVS"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}
