// Command lamps schedules one task graph with the leakage-aware heuristics
// and reports the energy of every approach.
//
// Input graphs come from an STG file, the built-in MPEG-1 benchmark, one of
// the synthetic application graphs, or a seeded random generator:
//
//	lamps -stg graph.stg -grain coarse -factor 2
//	lamps -mpeg
//	lamps -app fpppp -factor 8
//	lamps -random 100 -seed 7 -factor 1.5 -schedule
//
// The deadline is -factor times the graph's critical path length at maximum
// frequency, or -deadline seconds when given explicitly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"lamps/internal/core"
	"lamps/internal/dag"
	"lamps/internal/energy"
	"lamps/internal/mpeg"
	"lamps/internal/power"
	"lamps/internal/sim"
	"lamps/internal/stg"
	"lamps/internal/taskgen"
)

// progressObserver narrates the engine's search on stderr (-v): each phase
// transition, each fresh schedule build, and a running count of energy
// evaluations.
type progressObserver struct {
	w        io.Writer
	approach string
	levels   int
}

func (p *progressObserver) OnPhase(name string) {
	if p.levels > 0 {
		fmt.Fprintf(p.w, "lamps: %s:   %d (schedule, level) evaluations\n", p.approach, p.levels)
		p.levels = 0
	}
	fmt.Fprintf(p.w, "lamps: %s: phase %s\n", p.approach, name)
}

func (p *progressObserver) OnScheduleBuilt(nprocs int, makespanCycles int64) {
	fmt.Fprintf(p.w, "lamps: %s:   schedule on %d proc(s), makespan %d cycles\n", p.approach, nprocs, makespanCycles)
}

func (p *progressObserver) OnLevelEvaluated(power.Level, energy.Breakdown) { p.levels++ }

// finish flushes the trailing evaluation count after a run completes.
func (p *progressObserver) finish() {
	if p.levels > 0 {
		fmt.Fprintf(p.w, "lamps: %s:   %d (schedule, level) evaluations\n", p.approach, p.levels)
		p.levels = 0
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lamps:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lamps", flag.ContinueOnError)
	var (
		stgPath   = fs.String("stg", "", "read the task graph from an STG file")
		useMPEG   = fs.Bool("mpeg", false, "use the built-in MPEG-1 GOP benchmark (deadline 0.5s)")
		app       = fs.String("app", "", "use a synthetic application graph: fpppp, robot or sparse")
		random    = fs.Int("random", 0, "generate a random graph with this many tasks")
		seed      = fs.Int64("seed", 1, "seed for -random")
		grain     = fs.String("grain", "coarse", "weight scaling for -stg/-app/-random: coarse (1ms) or fine (10us)")
		factor    = fs.Float64("factor", 2, "deadline as a multiple of the critical path length")
		deadline  = fs.Float64("deadline", 0, "explicit deadline in seconds (overrides -factor)")
		approach  = fs.String("approach", "", "run a single approach instead of all (e.g. LAMPS+PS)")
		schedule  = fs.Bool("schedule", false, "print the winning schedule")
		dot       = fs.Bool("dot", false, "print the task graph in DOT format and exit")
		trace     = fs.String("trace", "", "write the winning schedule's simulated execution as Chrome trace JSON to this file")
		jsonOut   = fs.String("json", "", "write the winning schedule (with graph) as JSON to this file")
		ext       = fs.Bool("extensions", false, "also compare the multiple-frequency extensions (voltage islands, per-task DVS)")
		model     = fs.String("model", "", "load the power model from a JSON file (see -dump-model)")
		platform  = fs.String("platform", "", "load a heterogeneous platform from a JSON file (see examples/platforms); excludes -model")
		dumpModel = fs.Bool("dump-model", false, "print the default 70nm power model as JSON and exit")
		verbose   = fs.Bool("v", false, "narrate the search progress (phases, schedule builds, evaluations) on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	m := power.Default70nm()
	if *dumpModel {
		return m.WriteJSON(out)
	}
	if *model != "" {
		if *platform != "" {
			return fmt.Errorf("-model and -platform are mutually exclusive")
		}
		f, err := os.Open(*model)
		if err != nil {
			return err
		}
		defer f.Close()
		m, err = power.LoadJSON(f)
		if err != nil {
			return err
		}
	}
	var pf *power.Platform
	if *platform != "" {
		f, err := os.Open(*platform)
		if err != nil {
			return err
		}
		defer f.Close()
		if pf, err = power.LoadPlatformJSON(f); err != nil {
			return err
		}
	}
	g, dl, err := loadGraph(*stgPath, *useMPEG, *app, *random, *seed, *grain)
	if err != nil {
		return err
	}
	if *dot {
		return g.WriteDOT(out)
	}
	fref := m.FMax()
	cfg := core.Config{Model: m, Deadline: dl}
	if pf != nil {
		fref = pf.RefFMax()
		cfg = core.Config{Platform: pf, Deadline: dl}
		if cfg.Deadline == 0 {
			cfg = core.DeadlineFactorPlatform(g, pf, *factor)
		}
	} else if cfg.Deadline == 0 {
		cfg = core.DeadlineFactor(g, m, *factor)
	}
	if *deadline > 0 {
		cfg.Deadline = *deadline
	}

	fmt.Fprintf(out, "graph %q: %d tasks, %d edges, CPL %d cycles (%.4gs at fmax), work %d cycles, parallelism %.2f\n",
		g.Name(), g.NumTasks(), g.NumEdges(), g.CriticalPathLength(),
		float64(g.CriticalPathLength())/fref, g.TotalWork(), g.Parallelism())
	if pf != nil {
		fmt.Fprintf(out, "platform: %s\n", pf)
	}
	fmt.Fprintf(out, "deadline: %.6gs (%.2fx CPL)\n\n",
		cfg.Deadline, cfg.Deadline*fref/float64(g.CriticalPathLength()))

	approaches := core.Approaches
	if *approach != "" {
		approaches = []string{*approach}
	}
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "approach\tenergy[J]\t#procs\tVdd\tf/fmax\tmakespan[s]\tshutdowns\tsavings vs S&S")
	var progress *progressObserver
	eng := core.Engine{Config: cfg}
	if *verbose {
		progress = &progressObserver{w: os.Stderr}
		eng.Observer = progress
	}
	var base float64
	var best *core.Result
	for _, a := range approaches {
		if progress != nil {
			progress.approach = a
		}
		r, err := eng.Run(context.Background(), a, g)
		if progress != nil {
			progress.finish()
		}
		if err != nil {
			return fmt.Errorf("%s: %w", a, err)
		}
		if a == core.ApproachSS {
			base = r.TotalEnergy()
		}
		savings := "-"
		if base > 0 && a != core.ApproachSS {
			savings = fmt.Sprintf("%.1f%%", 100*(1-r.TotalEnergy()/base))
		}
		procs := "-"
		makespan := "-"
		if r.Schedule != nil {
			procs = fmt.Sprint(r.NumProcs)
			makespan = fmt.Sprintf("%.4g", r.MakespanSec())
			if best == nil || r.TotalEnergy() < best.TotalEnergy() {
				best = r
			}
		}
		fmt.Fprintf(tw, "%s\t%.6g\t%s\t%.2f\t%.2f\t%s\t%d\t%s\n",
			a, r.TotalEnergy(), procs, r.Level.Vdd, r.Level.Norm, makespan,
			r.Energy.Shutdowns, savings)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if *schedule && best != nil {
		fmt.Fprintf(out, "\nbest schedulable approach: %s\n%s", best.Approach, best.Schedule)
	}
	if *ext {
		isl, err := core.VoltageIslands(g, cfg, true)
		if err != nil {
			return err
		}
		pt, err := core.SlackReclaimDVS(g, cfg, true)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nmultiple-frequency extensions (beyond the paper):\n")
		fmt.Fprintf(out, "  %-16s %.6g J on %d proc(s)\n", core.ApproachIslands, isl.TotalEnergy(), isl.NumProcs)
		fmt.Fprintf(out, "  %-16s %.6g J on %d proc(s)\n", core.ApproachPerTask, pt.TotalEnergy(), pt.NumProcs)
	}
	if *jsonOut != "" && best != nil {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := best.Schedule.WriteJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %s schedule to %s\n", best.Approach, *jsonOut)
	}
	if *trace != "" && best != nil {
		if pf != nil {
			return fmt.Errorf("-trace is not supported with -platform: the simulator models a homogeneous machine")
		}
		tr, err := sim.Run(best.Schedule, m, sim.Options{
			Level:       best.Level,
			PS:          best.Approach == core.ApproachSSPS || best.Approach == core.ApproachLAMPSPS,
			DeadlineSec: cfg.Deadline,
		})
		if err != nil {
			return err
		}
		f, err := os.Create(*trace)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tr.WriteChromeTrace(f, best.Approach+" on "+g.Name()); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote execution trace of %s to %s (open in chrome://tracing)\n",
			best.Approach, *trace)
	}
	return nil
}

func loadGraph(stgPath string, useMPEG bool, app string, random int, seed int64, grain string) (*dag.Graph, float64, error) {
	gr := taskgen.Coarse
	switch grain {
	case "coarse":
	case "fine":
		gr = taskgen.Fine
	default:
		return nil, 0, fmt.Errorf("unknown grain %q (want coarse or fine)", grain)
	}
	switch {
	case useMPEG:
		return mpeg.Fig9(), mpeg.RealTimeDeadline, nil
	case stgPath != "":
		f, err := os.Open(stgPath)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		g, err := stg.Parse(f, strings.TrimSuffix(stgPath, ".stg"))
		if err != nil {
			return nil, 0, err
		}
		return gr.Scale(g), 0, nil
	case app != "":
		for _, g := range taskgen.Applications() {
			if g.Name() == app {
				return gr.Scale(g), 0, nil
			}
		}
		return nil, 0, fmt.Errorf("unknown application %q (want fpppp, robot or sparse)", app)
	case random > 0:
		g, err := taskgen.Member(random, int(seed%4), seed)
		if err != nil {
			return nil, 0, err
		}
		return gr.Scale(g), 0, nil
	}
	return nil, 0, fmt.Errorf("no input: use -stg, -mpeg, -app or -random (see -h)")
}
