// Command corebench measures the core scheduling engine in-process: for
// each benchmark graph and approach it times the serial engine against the
// parallel one (same Config, a shared worker pool), verifies the two return
// identical energy and Stats — the determinism contract — and writes wall
// times plus speedups as JSON.
//
//	corebench -out BENCH_core.json -workers 8 -repeat 5
//
// Wall times are best-of -repeat, so the numbers approximate the machine's
// capability rather than its scheduling jitter. The reported speedup is
// honest for the machine it ran on: on a single-core host serial and
// parallel coincide (within noise) and the speedup hovers around 1.
//
// The report also carries a kernel_benchmarks section: before/after
// micro-benchmarks of the two hot kernels (list scheduling and per-level
// energy evaluation) with ns/op, allocs/op and bytes/op, where "before" is
// the fresh-allocation shape every build used to pay and "after" is the
// reusable-scratch path the engine now runs (see README for how to read the
// fields).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"lamps/internal/core"
	"lamps/internal/dag"
	"lamps/internal/energy"
	"lamps/internal/power"
	"lamps/internal/sched"
	"lamps/internal/taskgen"
	"lamps/internal/workpool"
)

type caseReport struct {
	Graph      string  `json:"graph"`
	Tasks      int     `json:"tasks"`
	Approach   string  `json:"approach"`
	Factor     float64 `json:"deadline_factor"`
	SerialMs   float64 `json:"serial_ms"`
	ParallelMs float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
	EnergyJ    float64 `json:"energy_j"`
	Schedules  int     `json:"schedules_built"`
	Levels     int     `json:"levels_evaluated"`
}

// kernelReport is one micro-benchmark of a hot kernel. The pairs share a
// prefix: <kernel>_before is the fresh-allocation shape (new scratch per
// call), <kernel>_after the reusable-scratch path the engine runs.
type kernelReport struct {
	Name        string  `json:"name"`
	Graph       string  `json:"graph"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type report struct {
	Workers    int `json:"workers"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// Multicore records whether parallel speedup was physically possible on
	// the host that produced this report. Comparison tooling (and the CI
	// speedup gate) must skip speedup regressions when it is false: a
	// GOMAXPROCS=1 box runs serial and parallel on the same CPU and any
	// ratio it reports is scheduling noise, not a regression signal.
	Multicore      bool           `json:"multicore"`
	Repeat         int            `json:"repeat"`
	Cases          []caseReport   `json:"cases"`
	Kernel         []kernelReport `json:"kernel_benchmarks"`
	GeomeanSpeedup float64        `json:"geomean_speedup"`
	GeneratedAtUTC string         `json:"generated_at_utc"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_core.json", "write the JSON report to this file (- for stdout)")
		workers = flag.Int("workers", 0, "parallel engine pool size (0 = GOMAXPROCS)")
		repeat  = flag.Int("repeat", 5, "timed runs per case; best-of wins")
		factor  = flag.Float64("factor", 2, "deadline as a multiple of the critical path length")
		minSpd  = flag.Float64("min-speedup", 0, "exit 2 if the geomean speedup is below this on a multicore host (0 disables; always skipped when GOMAXPROCS=1)")
	)
	flag.Parse()
	code, err := run(*out, *workers, *repeat, *factor, *minSpd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "corebench:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// graphs assembles the benchmark workloads: the paper's application graphs
// at coarse grain plus one 1000-task random member for scale.
func graphs() ([]*dag.Graph, error) {
	var out []*dag.Graph
	for _, g := range taskgen.Applications() {
		out = append(out, taskgen.Coarse.Scale(g))
	}
	r, err := taskgen.Member(1000, 0, 42)
	if err != nil {
		return nil, err
	}
	return append(out, taskgen.Coarse.Scale(r)), nil
}

// kernelBenchmarks micro-benchmarks the two hot kernels on the largest
// benchmark graph, pairing each with its pre-optimisation shape: list
// scheduling with fresh scratch per call vs one reused Scheduler, and a +PS
// level sweep with one full energy evaluation per operating point vs one
// GapProfile shared by every level. allocs/op of the *_after rows is the
// number CI gates on: the reused paths must not allocate in steady state.
func kernelBenchmarks(gs []*dag.Graph) ([]kernelReport, error) {
	g := gs[0]
	for _, c := range gs {
		if c.NumTasks() > g.NumTasks() {
			g = c
		}
	}
	const nprocs = 8
	m := power.Default70nm()
	prio := sched.EDFPriorities(g, 0)
	s, err := sched.ListScheduleReleases(g, nprocs, prio, nil)
	if err != nil {
		return nil, err
	}
	// A deadline every operating point can meet, so the sweeps below cover
	// the full level ladder.
	deadline := 1.5 * float64(s.Makespan) / m.MinLevel().Freq
	var benchErr error
	measure := func(name string, fn func(b *testing.B)) kernelReport {
		r := testing.Benchmark(fn)
		return kernelReport{
			Name:        name,
			Graph:       g.Name(),
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}

	var k sched.Scheduler
	var reused sched.Schedule
	if err := k.ScheduleInto(&reused, g, nprocs, prio, nil); err != nil {
		return nil, err
	}
	prof := energy.NewGapProfile(s)

	out := []kernelReport{
		measure("schedule_before_fresh_scratch", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sched.ListScheduleReleases(g, nprocs, prio, nil); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		}),
		measure("schedule_after_reused_kernel", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := k.ScheduleInto(&reused, g, nprocs, prio, nil); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		}),
		measure("energy_sweep_before_per_level", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, lvl := range m.Levels() {
					if _, err := energy.Evaluate(s, m, lvl, deadline, energy.Options{PS: true}); err != nil {
						benchErr = err
						b.FailNow()
					}
				}
			}
		}),
		measure("energy_sweep_after_gap_profile", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prof.Reset(s)
				for _, lvl := range m.Levels() {
					if _, err := prof.Evaluate(m, lvl, deadline, energy.Options{PS: true}); err != nil {
						benchErr = err
						b.FailNow()
					}
				}
			}
		}),
	}

	// Heterogeneous counterparts of the two reused-scratch rows: the
	// per-class dispatch kernel and the operating-grid sweep on an
	// LP×(nprocs−1) + HP×1 machine. Their allocs/op must also be 0 — the
	// zero-allocation contract covers the platform paths.
	lpm := *power.Default70nm()
	lpm.VddMax = 0.85
	lpm.POn = 0.04
	if err := lpm.Build(); err != nil {
		return nil, err
	}
	procs := make([]int, nprocs)
	procs[nprocs-1] = 1
	pf, err := power.NewPlatform(
		[]power.CoreClass{{Name: "lp", Model: &lpm}, {Name: "hp", Model: power.Default70nm()}},
		procs,
	)
	if err != nil {
		return nil, err
	}
	var kp sched.Scheduler
	var plat sched.Schedule
	if err := kp.ScheduleIntoPlatform(&plat, g, pf, nprocs, prio, nil); err != nil {
		return nil, err
	}
	var pprof energy.GapProfile
	pprof.ResetPlatform(&plat, pf)
	grid := pf.Points()
	platDeadline := 1.5 * float64(plat.Makespan) / grid[len(grid)-1].TimelineFreq
	out = append(out,
		measure("schedule_platform_reused_kernel", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := kp.ScheduleIntoPlatform(&plat, g, pf, nprocs, prio, nil); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		}),
		measure("energy_sweep_platform_gap_profile", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pprof.ResetPlatform(&plat, pf)
				for _, pt := range grid {
					if _, err := pprof.EvaluatePoint(pf, pt, platDeadline, energy.Options{PS: true}); err != nil {
						benchErr = err
						b.FailNow()
					}
				}
			}
		}),
	)

	// Backup-planning kernel: one fault-tolerant plan over the warm
	// homogeneous schedule, paired as usual — the one-shot wrapper with
	// fresh scratch per call vs one reused BackupPlanner. The plan arrays
	// themselves are fresh per call by design (the engine detaches them into
	// the result), so the after row is not zero-alloc; the pair still pins
	// the planner's interval-scratch reuse.
	var bplanner sched.BackupPlanner
	if _, err := bplanner.Plan(s, nil, sched.BackupAnywhere); err != nil {
		return nil, err
	}
	out = append(out,
		measure("backup_plan_before_fresh_scratch", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sched.PlanBackups(s, nil, sched.BackupAnywhere); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		}),
		measure("backup_plan_after_reused_planner", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bplanner.Plan(s, nil, sched.BackupAnywhere); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		}),
	)

	// Whole-request row: one warm LAMPS+PS request end to end through
	// RunBatch — arena-backed run scratch, pooled schedule shells, compact
	// result detachment. allocs/op here is the per-request figure the core
	// alloc gate bounds (TestRunBatchSteadyStateZeroAlloc, budget 8); it is
	// deliberately measured on the engine's serving entry point, not a
	// kernel, so a regression anywhere on the request path shows up.
	eng := core.Engine{}
	warmReq := []core.BatchRequest{{
		Approach: core.ApproachLAMPSPS,
		Graph:    g,
		Config:   core.DeadlineFactor(g, m, 2),
	}}
	if res := eng.RunBatch(context.Background(), warmReq); res[0].Err != nil {
		return nil, res[0].Err
	}
	out = append(out, measure("engine_runbatch_warm_request", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := eng.RunBatch(context.Background(), warmReq); res[0].Err != nil {
				benchErr = res[0].Err
				b.FailNow()
			}
		}
	}))
	return out, benchErr
}

// timeEngine returns the best-of-n wall time of eng.Run and the last result.
func timeEngine(eng *core.Engine, approach string, g *dag.Graph, n int) (time.Duration, *core.Result, error) {
	best := time.Duration(math.MaxInt64)
	var last *core.Result
	for i := 0; i < n; i++ {
		start := time.Now()
		r, err := eng.Run(context.Background(), approach, g)
		if err != nil {
			return 0, nil, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
		last = r
	}
	return best, last, nil
}

func run(out string, workers, repeat int, factor, minSpeedup float64) (int, error) {
	gs, err := graphs()
	if err != nil {
		return 1, err
	}
	pool := workpool.NewPool(workers)
	m := power.Default70nm()
	rep := report{
		Workers:        pool.Cap(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Multicore:      runtime.GOMAXPROCS(0) > 1,
		Repeat:         repeat,
		GeneratedAtUTC: time.Now().UTC().Format(time.RFC3339),
	}

	logGeo := 0.0
	for _, g := range gs {
		cfg := core.DeadlineFactor(g, m, factor)
		for _, approach := range []string{core.ApproachLAMPS, core.ApproachLAMPSPS} {
			serial := core.Engine{Config: cfg}
			parallel := core.Engine{Config: cfg, Pool: pool}
			sd, sr, err := timeEngine(&serial, approach, g, repeat)
			if err != nil {
				return 1, fmt.Errorf("%s on %s (serial): %w", approach, g.Name(), err)
			}
			pd, pr, err := timeEngine(&parallel, approach, g, repeat)
			if err != nil {
				return 1, fmt.Errorf("%s on %s (parallel): %w", approach, g.Name(), err)
			}
			if sr.TotalEnergy() != pr.TotalEnergy() || sr.Stats != pr.Stats {
				return 1, fmt.Errorf("%s on %s: parallel result diverged from serial (%.9g J %+v vs %.9g J %+v)",
					approach, g.Name(), pr.TotalEnergy(), pr.Stats, sr.TotalEnergy(), sr.Stats)
			}
			speedup := sd.Seconds() / pd.Seconds()
			logGeo += math.Log(speedup)
			rep.Cases = append(rep.Cases, caseReport{
				Graph:      g.Name(),
				Tasks:      g.NumTasks(),
				Approach:   approach,
				Factor:     factor,
				SerialMs:   1e3 * sd.Seconds(),
				ParallelMs: 1e3 * pd.Seconds(),
				Speedup:    speedup,
				EnergyJ:    sr.TotalEnergy(),
				Schedules:  sr.Stats.SchedulesBuilt,
				Levels:     sr.Stats.LevelsEvaluated,
			})
			fmt.Fprintf(os.Stderr, "%-8s %-9s serial %8.2fms  parallel(%d) %8.2fms  speedup %.2fx\n",
				g.Name(), approach, 1e3*sd.Seconds(), pool.Cap(), 1e3*pd.Seconds(), speedup)
		}
	}
	rep.GeomeanSpeedup = math.Exp(logGeo / float64(len(rep.Cases)))

	rep.Kernel, err = kernelBenchmarks(gs)
	if err != nil {
		return 1, fmt.Errorf("kernel benchmarks: %w", err)
	}
	for _, k := range rep.Kernel {
		fmt.Fprintf(os.Stderr, "%-32s %-8s %12.0f ns/op %6d allocs/op %10d B/op\n",
			k.Name, k.Graph, k.NsPerOp, k.AllocsPerOp, k.BytesPerOp)
	}

	// The speedup regression gate. Only meaningful where parallel speedup is
	// physically available: on a single-core host the ratio is noise, so the
	// gate is skipped (with a notice) rather than failed — matching how the
	// loadgen throughput gate treats GOMAXPROCS=1.
	code := 0
	switch {
	case minSpeedup <= 0:
	case !rep.Multicore:
		fmt.Fprintf(os.Stderr, "corebench: speedup gate skipped: GOMAXPROCS=1, parallel speedup is not physically available (geomean %.2fx)\n",
			rep.GeomeanSpeedup)
	case rep.GeomeanSpeedup < minSpeedup:
		code = 2
		fmt.Fprintf(os.Stderr, "corebench: SPEEDUP GATE FAILED: geomean %.2fx below the %.2fx floor\n",
			rep.GeomeanSpeedup, minSpeedup)
	default:
		fmt.Fprintf(os.Stderr, "corebench: geomean speedup %.2fx (gate: >= %.2fx)\n", rep.GeomeanSpeedup, minSpeedup)
	}

	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return 1, err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return code, enc.Encode(&rep)
}
