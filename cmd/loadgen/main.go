// Command loadgen is the fleet-scale load generator for the batch
// scheduling layer: it drives core.Engine.RunBatch with a deterministic
// mixed-size workload (taskgen graphs across several sizes and approaches)
// and reports throughput and HDR-style latency percentiles, not ns/op.
//
//	loadgen -out BENCH_loadgen.json -workers 1,4 -duration 3s -rps 200
//
// Two generator disciplines are measured, because they answer different
// questions:
//
//   - Closed loop: a fixed number of whole requests is kept in flight
//     (batches of -batch requests over a pool of W workers, the next batch
//     submitted as soon as the previous one drains). Throughput here is
//     the system's capacity — requests/second with every worker busy —
//     and is the number the workers=4 vs workers=1 speedup gate compares.
//     Closed-loop latency is flattering under saturation: a slow system
//     slows the generator down with it.
//   - Open loop: requests arrive on a fixed schedule (-rps), whether or
//     not earlier requests have finished, as real traffic does. Latency is
//     measured from the request's *scheduled* start, so queueing delay is
//     charged to the result (no coordinated omission). Open-loop p99 is
//     the honest tail-latency number at a given arrival rate.
//
// Before any timing, loadgen re-runs a slice of the workload through
// RunBatch at 4 workers and compares every result bit for bit against
// serial RunCtx calls — the batch determinism contract — and refuses to
// publish numbers from a binary whose parallel path diverges.
//
// Exit codes: 0 = measured and passed; 1 = operational or parity failure;
// 2 = SLO gate failure (closed-loop speedup below -min-speedup on a
// multicore host, or p99 above -slo-p99). Single-core hosts record
// "multicore": false and skip the speedup gate — a 1-CPU box cannot
// parallelise CPU-bound work, and pretending otherwise would gate CI on
// noise (see the corebench precedent).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"lamps/internal/core"
	"lamps/internal/dag"
	"lamps/internal/power"
	"lamps/internal/taskgen"
	"lamps/internal/workpool"
)

// latencyStats are the published percentiles of one measurement phase,
// in microseconds, plus a log-spaced HDR-style histogram.
type latencyStats struct {
	P50Us  float64 `json:"p50_us"`
	P90Us  float64 `json:"p90_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
	MeanUs float64 `json:"mean_us"`

	// Buckets is the HDR-style histogram: log-spaced upper bounds from 1 µs
	// up, doubling per bucket, with counts. Only non-empty buckets are
	// emitted.
	Buckets []latencyBucket `json:"buckets,omitempty"`
}

type latencyBucket struct {
	LeUs  float64 `json:"le_us"`
	Count int     `json:"count"`
}

// memReport is the steady-state allocation profile of one measurement
// window, from runtime.MemStats deltas taken around it. It covers the whole
// process — engine, pooled scratch and the generator itself — so it is the
// fleet-facing "GC pressure per request served" number rather than the
// per-kernel allocs/op the corebench gates pin.
type memReport struct {
	AllocsPerRequest float64 `json:"allocs_per_request"`
	BytesPerRequest  float64 `json:"bytes_per_request"`
	NumGC            uint32  `json:"num_gc"`
	GCPauseTotalUs   float64 `json:"gc_pause_total_us"`
}

// closedReport is one closed-loop measurement at a fixed worker count.
type closedReport struct {
	Workers     int          `json:"workers"`
	BatchSize   int          `json:"batch_size"`
	DurationSec float64      `json:"duration_sec"`
	Requests    int          `json:"requests"`
	Errors      int          `json:"errors"`
	RPS         float64      `json:"rps"`
	Latency     latencyStats `json:"latency"`
	Memory      memReport    `json:"memory"`
}

// openReport is one open-loop measurement at a fixed arrival rate.
type openReport struct {
	TargetRPS   float64      `json:"target_rps"`
	AchievedRPS float64      `json:"achieved_rps"`
	DurationSec float64      `json:"duration_sec"`
	Requests    int          `json:"requests"`
	Errors      int          `json:"errors"`
	Latency     latencyStats `json:"latency"` // from scheduled start: queueing included
}

// speedupReport compares closed-loop throughput across the measured worker
// counts — the regression gate this tool exists to enforce.
type speedupReport struct {
	WorkersLo     int     `json:"workers_lo"`
	WorkersHi     int     `json:"workers_hi"`
	RPSLo         float64 `json:"rps_lo"`
	RPSHi         float64 `json:"rps_hi"`
	Ratio         float64 `json:"ratio"`
	Gate          string  `json:"gate"` // "pass", "fail" or "skipped-single-core"
	MinRatioGated float64 `json:"min_ratio_gated"`
}

type workloadReport struct {
	Sizes          []int    `json:"sizes"`
	GraphsPerSize  int      `json:"graphs_per_size"`
	Approaches     []string `json:"approaches"`
	DeadlineFactor float64  `json:"deadline_factor"`
	CycleLength    int      `json:"cycle_length"` // distinct requests before the stream repeats
}

type report struct {
	GOMAXPROCS     int            `json:"gomaxprocs"`
	Multicore      bool           `json:"multicore"`
	Smoke          bool           `json:"smoke,omitempty"`
	Workload       workloadReport `json:"workload"`
	ParityOK       bool           `json:"parity_ok"`
	ParityChecked  int            `json:"parity_checked"`
	Closed         []closedReport `json:"closed"`
	Open           []openReport   `json:"open"`
	Speedup        *speedupReport `json:"speedup,omitempty"`
	GeneratedAtUTC string         `json:"generated_at_utc"`
}

func main() {
	var (
		out        = flag.String("out", "BENCH_loadgen.json", "write the JSON report to this file (- for stdout)")
		workersArg = flag.String("workers", "1,4", "comma-separated closed-loop worker counts to measure")
		batch      = flag.Int("batch", 64, "closed-loop batch size (requests per RunBatch call)")
		duration   = flag.Duration("duration", 3*time.Second, "closed-loop measurement window per worker count")
		warmup     = flag.Duration("warmup", 500*time.Millisecond, "warmup window before each measurement")
		rps        = flag.Float64("rps", 200, "open-loop target arrival rate (0 disables the open-loop phase)")
		sizesArg   = flag.String("sizes", "24,64,160", "comma-separated task-graph sizes of the mixed workload")
		factor     = flag.Float64("factor", 2, "deadline as a multiple of each graph's critical path length")
		minSpeedup = flag.Float64("min-speedup", 1.0, "fail (exit 2) if closed-loop RPS at the highest worker count is below this multiple of the lowest; 0 disables; skipped on single-core hosts")
		sloP99     = flag.Duration("slo-p99", 0, "fail (exit 2) if closed-loop p99 at the highest worker count exceeds this (0 disables)")
		smoke      = flag.Bool("smoke", false, "shrink all windows for a ~2s end-to-end smoke run")
	)
	flag.Parse()
	if *smoke {
		*duration = 300 * time.Millisecond
		*warmup = 100 * time.Millisecond
		if *rps > 50 {
			*rps = 50
		}
	}
	code, err := run(*out, *workersArg, *sizesArg, *batch, *duration, *warmup, *rps, *factor, *minSpeedup, *sloP99, *smoke)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad list entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// buildWorkload assembles the deterministic mixed request stream: for every
// size, a few seeded generator-family members; for every graph, one request
// per approach. The stream cycles; consecutive requests deliberately jump
// between sizes and approaches so every batch mixes microsecond and
// millisecond runs — the interleaving a shared fleet queue produces.
func buildWorkload(sizes []int, factor float64) ([]core.BatchRequest, workloadReport, error) {
	const graphsPerSize = 2
	m := power.Default70nm()
	approaches := []string{core.ApproachLAMPS, core.ApproachLAMPSPS, core.ApproachSSPS}
	var graphs []*dag.Graph
	for _, size := range sizes {
		for i := 0; i < graphsPerSize; i++ {
			g, err := taskgen.Member(size, i, int64(size)*1000+int64(i))
			if err != nil {
				return nil, workloadReport{}, fmt.Errorf("generating %d-task graph %d: %w", size, i, err)
			}
			graphs = append(graphs, taskgen.Coarse.Scale(g))
		}
	}
	var reqs []core.BatchRequest
	for ai, approach := range approaches {
		for gi, g := range graphs {
			// Rotate the starting graph per approach so the cycle interleaves
			// sizes rather than sweeping one graph with every approach first.
			g = graphs[(gi+ai)%len(graphs)]
			reqs = append(reqs, core.BatchRequest{
				Approach: approach,
				Graph:    g,
				Config:   core.DeadlineFactor(g, m, factor),
			})
		}
	}
	return reqs, workloadReport{
		Sizes:          sizes,
		GraphsPerSize:  graphsPerSize,
		Approaches:     approaches,
		DeadlineFactor: factor,
		CycleLength:    len(reqs),
	}, nil
}

// checkParity runs the whole workload cycle through RunBatch at 4 workers
// and through serial RunCtx calls and requires bit-identical results: total
// energy, level, processor count, schedule arrays and Stats. This is the
// "batch results byte-identical to serial" acceptance gate, run on every
// invocation so the published numbers always come from a verified binary.
func checkParity(reqs []core.BatchRequest) (int, error) {
	eng := core.Engine{Pool: workpool.NewPool(4)}
	batch := eng.RunBatch(context.Background(), reqs)
	for i, req := range reqs {
		serial, serr := core.RunCtx(context.Background(), req.Approach, req.Graph, req.Config)
		br := batch[i]
		if (br.Err == nil) != (serr == nil) {
			return i, fmt.Errorf("request %d (%s): batch err %v, serial err %v", i, req.Approach, br.Err, serr)
		}
		if serr != nil {
			if br.Err.Error() != serr.Error() {
				return i, fmt.Errorf("request %d: batch error %q, serial error %q", i, br.Err, serr)
			}
			continue
		}
		if err := sameResult(br.Result, serial); err != nil {
			return i, fmt.Errorf("request %d (%s on %s): %w", i, req.Approach, req.Graph.Name(), err)
		}
	}
	return len(reqs), nil
}

// sameResult compares two results bit for bit on every externally visible
// field.
func sameResult(a, b *core.Result) error {
	switch {
	case a.Approach != b.Approach:
		return fmt.Errorf("approach %q vs %q", a.Approach, b.Approach)
	case a.NumProcs != b.NumProcs:
		return fmt.Errorf("procs %d vs %d", a.NumProcs, b.NumProcs)
	case a.Level != b.Level:
		return fmt.Errorf("level %+v vs %+v", a.Level, b.Level)
	case a.Energy != b.Energy:
		return fmt.Errorf("energy %+v vs %+v", a.Energy, b.Energy)
	case a.Stats != b.Stats:
		return fmt.Errorf("stats %+v vs %+v", a.Stats, b.Stats)
	case (a.Schedule == nil) != (b.Schedule == nil):
		return fmt.Errorf("schedule presence differs")
	}
	if a.Schedule != nil {
		if a.Schedule.Makespan != b.Schedule.Makespan {
			return fmt.Errorf("makespan %d vs %d", a.Schedule.Makespan, b.Schedule.Makespan)
		}
		for v := range a.Schedule.Proc {
			if a.Schedule.Proc[v] != b.Schedule.Proc[v] ||
				a.Schedule.Start[v] != b.Schedule.Start[v] ||
				a.Schedule.Finish[v] != b.Schedule.Finish[v] {
				return fmt.Errorf("placement of task %d differs", v)
			}
		}
	}
	return nil
}

// summarise sorts the samples and extracts the published percentiles and
// the log-spaced histogram.
func summarise(samples []time.Duration) latencyStats {
	if len(samples) == 0 {
		return latencyStats{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	pct := func(p float64) float64 {
		idx := int(math.Ceil(p*float64(len(samples)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(samples) {
			idx = len(samples) - 1
		}
		return float64(samples[idx]) / float64(time.Microsecond)
	}
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	st := latencyStats{
		P50Us:  pct(0.50),
		P90Us:  pct(0.90),
		P99Us:  pct(0.99),
		P999Us: pct(0.999),
		MaxUs:  float64(samples[len(samples)-1]) / float64(time.Microsecond),
		MeanUs: float64(sum) / float64(len(samples)) / float64(time.Microsecond),
	}
	// HDR-style buckets: 1 µs × 2^k upper bounds.
	counts := map[float64]int{}
	for _, s := range samples {
		le := 1.0
		for us := float64(s) / float64(time.Microsecond); le < us; le *= 2 {
		}
		counts[le]++
	}
	for le, c := range counts {
		st.Buckets = append(st.Buckets, latencyBucket{LeUs: le, Count: c})
	}
	sort.Slice(st.Buckets, func(i, j int) bool { return st.Buckets[i].LeUs < st.Buckets[j].LeUs })
	return st
}

// tallyClosed folds one RunBatch's results into the closed-loop report:
// only successful requests count toward Requests (and hence RPS), errored
// ones count in Errors alone. Counting whole batches used to inflate
// throughput under partial failure — a batch of 64 with 60 errors reported
// 64 requests served.
func tallyClosed(results []core.BatchResult, rep *closedReport, samples *[]time.Duration) {
	for _, br := range results {
		if br.Err != nil {
			rep.Errors++
			continue
		}
		rep.Requests++
		*samples = append(*samples, br.Elapsed)
	}
}

// runClosed measures closed-loop capacity at one worker count: batches of
// batchSize requests are pushed through RunBatch back to back for the
// duration, per-request latencies taken from BatchResult.Elapsed.
func runClosed(reqs []core.BatchRequest, workers, batchSize int, warmup, duration time.Duration) (closedReport, error) {
	eng := core.Engine{Pool: workpool.NewPool(workers)}
	ctx := context.Background()
	next := 0
	takeBatch := func() []core.BatchRequest {
		b := make([]core.BatchRequest, batchSize)
		for i := range b {
			b[i] = reqs[next%len(reqs)]
			next++
		}
		return b
	}
	drain := func(window time.Duration, record bool, rep *closedReport, samples *[]time.Duration) error {
		start := time.Now()
		for time.Since(start) < window {
			results := eng.RunBatch(ctx, takeBatch())
			if record {
				tallyClosed(results, rep, samples)
			}
		}
		if record {
			rep.DurationSec = time.Since(start).Seconds()
		}
		return nil
	}
	rep := closedReport{Workers: workers, BatchSize: batchSize}
	var samples []time.Duration
	if err := drain(warmup, false, nil, nil); err != nil {
		return rep, err
	}
	// Bracket only the measured window with MemStats so the warmup's pool
	// priming (arena and schedule-shell allocation) is excluded — the
	// published deltas are the steady state a long-running fleet worker sees.
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	if err := drain(duration, true, &rep, &samples); err != nil {
		return rep, err
	}
	runtime.ReadMemStats(&msAfter)
	if rep.Requests > 0 {
		rep.Memory = memReport{
			AllocsPerRequest: float64(msAfter.Mallocs-msBefore.Mallocs) / float64(rep.Requests),
			BytesPerRequest:  float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(rep.Requests),
			NumGC:            msAfter.NumGC - msBefore.NumGC,
			GCPauseTotalUs:   float64(msAfter.PauseTotalNs-msBefore.PauseTotalNs) / 1e3,
		}
	}
	if rep.Errors > 0 {
		return rep, fmt.Errorf("closed loop at %d workers: %d request errors", workers, rep.Errors)
	}
	rep.RPS = float64(rep.Requests) / rep.DurationSec
	rep.Latency = summarise(samples)
	return rep, nil
}

// runOpen measures tail latency under a fixed arrival schedule: request i
// is due at i/rps; its latency is measured from that scheduled instant, so
// time spent waiting behind a busy pool counts against the system, exactly
// as it would for a request sitting in an HTTP accept queue.
func runOpen(reqs []core.BatchRequest, rps float64, duration time.Duration) (openReport, error) {
	rep := openReport{TargetRPS: rps}
	pool := workpool.NewPool(0) // GOMAXPROCS: the serving default
	ctx := context.Background()

	total := int(rps * duration.Seconds())
	if total < 1 {
		total = 1
	}
	interval := time.Duration(float64(time.Second) / rps)
	type sample struct {
		lat time.Duration
		err error
	}
	samples := make([]sample, total)
	done := make(chan int, total)
	start := time.Now()
	for i := 0; i < total; i++ {
		due := start.Add(time.Duration(i) * interval)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		go func(i int, due time.Time) {
			req := reqs[i%len(reqs)]
			err := pool.Do(ctx, func() {
				_, runErr := core.RunCtx(ctx, req.Approach, req.Graph, req.Config)
				samples[i] = sample{lat: time.Since(due), err: runErr}
			})
			if err != nil {
				samples[i] = sample{err: err}
			}
			done <- i
		}(i, due)
	}
	for n := 0; n < total; n++ {
		<-done
	}
	wall := time.Since(start)

	lats := make([]time.Duration, 0, total)
	for _, s := range samples {
		if s.err != nil {
			rep.Errors++
			continue
		}
		lats = append(lats, s.lat)
	}
	if rep.Errors > 0 {
		return rep, fmt.Errorf("open loop: %d request errors", rep.Errors)
	}
	rep.Requests = total - rep.Errors // successes only, matching the closed loop
	rep.DurationSec = wall.Seconds()
	rep.AchievedRPS = float64(rep.Requests) / wall.Seconds()
	rep.Latency = summarise(lats)
	return rep, nil
}

func run(out, workersArg, sizesArg string, batch int, duration, warmup time.Duration, rps, factor, minSpeedup float64, sloP99 time.Duration, smoke bool) (int, error) {
	workerCounts, err := parseInts(workersArg)
	if err != nil {
		return 1, fmt.Errorf("-workers: %w", err)
	}
	sizes, err := parseInts(sizesArg)
	if err != nil {
		return 1, fmt.Errorf("-sizes: %w", err)
	}
	if batch < 1 {
		return 1, fmt.Errorf("-batch must be >= 1")
	}

	reqs, wl, err := buildWorkload(sizes, factor)
	if err != nil {
		return 1, err
	}
	rep := report{
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Multicore:      runtime.GOMAXPROCS(0) > 1,
		Smoke:          smoke,
		Workload:       wl,
		GeneratedAtUTC: time.Now().UTC().Format(time.RFC3339),
	}

	fmt.Fprintf(os.Stderr, "loadgen: parity check over %d requests...\n", len(reqs))
	checked, err := checkParity(reqs)
	rep.ParityChecked = checked
	if err != nil {
		rep.ParityOK = false
		writeReport(out, &rep)
		return 1, fmt.Errorf("batch/serial parity violated: %w", err)
	}
	rep.ParityOK = true

	for _, w := range workerCounts {
		cr, err := runClosed(reqs, w, batch, warmup, duration)
		if err != nil {
			return 1, err
		}
		rep.Closed = append(rep.Closed, cr)
		fmt.Fprintf(os.Stderr, "closed  workers=%-2d  %8.0f req/s   p50 %7.0fµs  p99 %7.0fµs  %6.1f allocs/req  (%d requests)\n",
			cr.Workers, cr.RPS, cr.Latency.P50Us, cr.Latency.P99Us, cr.Memory.AllocsPerRequest, cr.Requests)
	}

	if rps > 0 {
		or, err := runOpen(reqs, rps, duration)
		if err != nil {
			return 1, err
		}
		rep.Open = append(rep.Open, or)
		fmt.Fprintf(os.Stderr, "open    target=%.0f/s achieved=%.0f/s   p50 %7.0fµs  p99 %7.0fµs\n",
			or.TargetRPS, or.AchievedRPS, or.Latency.P50Us, or.Latency.P99Us)
	}

	code := 0
	if len(rep.Closed) >= 2 {
		lo, hi := rep.Closed[0], rep.Closed[0]
		for _, c := range rep.Closed[1:] {
			if c.Workers < lo.Workers {
				lo = c
			}
			if c.Workers > hi.Workers {
				hi = c
			}
		}
		sp := &speedupReport{
			WorkersLo: lo.Workers, WorkersHi: hi.Workers,
			RPSLo: lo.RPS, RPSHi: hi.RPS,
			Ratio:         hi.RPS / lo.RPS,
			MinRatioGated: minSpeedup,
		}
		switch {
		case !rep.Multicore:
			sp.Gate = "skipped-single-core"
			fmt.Fprintf(os.Stderr, "speedup %dw/%dw = %.2fx — gate skipped: GOMAXPROCS=1, parallel speedup is not physically available\n",
				hi.Workers, lo.Workers, sp.Ratio)
		case minSpeedup <= 0:
			sp.Gate = "disabled"
		case sp.Ratio < minSpeedup:
			sp.Gate = "fail"
			code = 2
			fmt.Fprintf(os.Stderr, "SPEEDUP GATE FAILED: closed-loop throughput at %d workers is %.2fx the %d-worker rate, below the %.2fx floor\n",
				hi.Workers, sp.Ratio, lo.Workers, minSpeedup)
		default:
			sp.Gate = "pass"
			fmt.Fprintf(os.Stderr, "speedup %dw/%dw = %.2fx (gate: >= %.2fx)\n", hi.Workers, lo.Workers, sp.Ratio, minSpeedup)
		}
		rep.Speedup = sp
	}
	if sloP99 > 0 && len(rep.Closed) > 0 {
		p99 := time.Duration(rep.Closed[len(rep.Closed)-1].Latency.P99Us) * time.Microsecond
		if p99 > sloP99 {
			code = 2
			fmt.Fprintf(os.Stderr, "P99 SLO FAILED: %v > %v\n", p99, sloP99)
		}
	}

	if err := writeReport(out, &rep); err != nil {
		return 1, err
	}
	return code, nil
}

func writeReport(out string, rep *report) error {
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
