package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lamps/internal/core"
	"lamps/internal/power"
	"lamps/internal/taskgen"
)

// TestTallyClosedCountsSuccessesOnly pins the throughput accounting: errored
// requests go to Errors, not Requests. The old per-batch accounting
// (Requests += batchSize) counted failures as served traffic, inflating RPS
// exactly when the system was failing.
func TestTallyClosedCountsSuccessesOnly(t *testing.T) {
	results := []core.BatchResult{
		{Result: &core.Result{}, Elapsed: time.Millisecond},
		{Err: errors.New("injected failure")},
		{Result: &core.Result{}, Elapsed: 2 * time.Millisecond},
		{Err: errors.New("injected failure")},
	}
	var rep closedReport
	var samples []time.Duration
	tallyClosed(results, &rep, &samples)
	if rep.Requests != 2 {
		t.Errorf("Requests = %d, want 2 (successes only)", rep.Requests)
	}
	if rep.Errors != 2 {
		t.Errorf("Errors = %d, want 2", rep.Errors)
	}
	if len(samples) != 2 {
		t.Errorf("latency samples = %d, want 2: errored requests must not contribute", len(samples))
	}
}

// TestRunClosedRejectsAllErrorWorkload drives the real closed loop with a
// workload whose every request fails (deadline far below the critical path)
// and requires zero reported throughput — under the old accounting this
// reported batchSize requests per drained batch.
func TestRunClosedRejectsAllErrorWorkload(t *testing.T) {
	g, err := taskgen.Member(24, 0, 24000)
	if err != nil {
		t.Fatal(err)
	}
	g = taskgen.Coarse.Scale(g)
	infeasible := core.BatchRequest{
		Approach: core.ApproachLAMPS,
		Graph:    g,
		Config:   core.DeadlineFactor(g, power.Default70nm(), 0.01),
	}
	rep, err := runClosed([]core.BatchRequest{infeasible}, 1, 4, 0, 20*time.Millisecond)
	if err == nil {
		t.Fatal("runClosed reported success on an all-error workload")
	}
	if rep.Errors == 0 {
		t.Fatal("no errors recorded for an infeasible workload")
	}
	if rep.Requests != 0 {
		t.Errorf("Requests = %d with every request erroring, want 0 (error-inflation regression)", rep.Requests)
	}
}

func TestSummarisePercentiles(t *testing.T) {
	// 1ms..100ms in 1ms steps: p50 = 50ms, p99 = 99ms, max = 100ms.
	samples := make([]time.Duration, 0, 100)
	for i := 100; i >= 1; i-- { // reversed: summarise must sort
		samples = append(samples, time.Duration(i)*time.Millisecond)
	}
	st := summarise(samples)
	ms := func(n int) float64 { return float64(n) * 1000 }
	if st.P50Us != ms(50) {
		t.Errorf("p50 = %vµs, want %vµs", st.P50Us, ms(50))
	}
	if st.P99Us != ms(99) {
		t.Errorf("p99 = %vµs, want %vµs", st.P99Us, ms(99))
	}
	if st.MaxUs != ms(100) {
		t.Errorf("max = %vµs, want %vµs", st.MaxUs, ms(100))
	}
	if st.P999Us != ms(100) {
		t.Errorf("p999 = %vµs, want %vµs (ceil rounds to the last sample)", st.P999Us, ms(100))
	}
	total := 0
	prev := 0.0
	for _, b := range st.Buckets {
		if b.LeUs <= prev {
			t.Fatalf("buckets not strictly increasing: %v after %v", b.LeUs, prev)
		}
		prev = b.LeUs
		total += b.Count
	}
	if total != len(samples) {
		t.Errorf("bucket counts sum to %d, want %d", total, len(samples))
	}
}

func TestSummariseEmpty(t *testing.T) {
	st := summarise(nil)
	if st.P50Us != 0 || st.MaxUs != 0 || len(st.Buckets) != 0 {
		t.Errorf("empty sample set should summarise to zeros, got %+v", st)
	}
}

func TestBuildWorkloadDeterministic(t *testing.T) {
	a, wlA, err := buildWorkload([]int{24, 64}, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, wlB, err := buildWorkload([]int{24, 64}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// workloadReport contains slices; compare via JSON.
	ja, _ := json.Marshal(wlA)
	jb, _ := json.Marshal(wlB)
	if string(ja) != string(jb) {
		t.Fatalf("workload metadata differs across builds:\n%s\n%s", ja, jb)
	}
	if len(a) != len(b) || len(a) != wlA.CycleLength {
		t.Fatalf("cycle length mismatch: %d vs %d (reported %d)", len(a), len(b), wlA.CycleLength)
	}
	for i := range a {
		if a[i].Approach != b[i].Approach {
			t.Fatalf("request %d approach differs: %s vs %s", i, a[i].Approach, b[i].Approach)
		}
		if a[i].Graph.Name() != b[i].Graph.Name() || a[i].Graph.NumTasks() != b[i].Graph.NumTasks() {
			t.Fatalf("request %d graph differs: %s/%d vs %s/%d", i,
				a[i].Graph.Name(), a[i].Graph.NumTasks(), b[i].Graph.Name(), b[i].Graph.NumTasks())
		}
		if a[i].Config.Deadline != b[i].Config.Deadline {
			t.Fatalf("request %d deadline differs: %v vs %v", i, a[i].Config.Deadline, b[i].Config.Deadline)
		}
	}
	// The stream must actually mix approaches and sizes between neighbours —
	// the interleaving property the comment in buildWorkload promises.
	varied := false
	for i := 1; i < len(a); i++ {
		if a[i].Graph.NumTasks() != a[i-1].Graph.NumTasks() {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("workload never changes graph size between consecutive requests")
	}
}

func TestParityOnWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("parity sweep is a second-scale test")
	}
	reqs, _, err := buildWorkload([]int{24}, 2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := checkParity(reqs)
	if err != nil {
		t.Fatalf("parity violated: %v", err)
	}
	if n != len(reqs) {
		t.Fatalf("checked %d of %d requests", n, len(reqs))
	}
}

// TestSmokeRun drives the whole tool end to end in smoke dimensions and
// validates the emitted report, exactly as `make smoke` does.
func TestSmokeRun(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run is a second-scale test")
	}
	out := filepath.Join(t.TempDir(), "loadgen.json")
	code, err := run(out, "1,2", "24", 8, 200*time.Millisecond, 50*time.Millisecond, 20, 2, 1.0, 0, true)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code == 1 {
		t.Fatalf("run returned operational failure")
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if !rep.ParityOK {
		t.Error("parity_ok = false")
	}
	if len(rep.Closed) != 2 {
		t.Fatalf("expected 2 closed-loop measurements, got %d", len(rep.Closed))
	}
	for _, c := range rep.Closed {
		if c.Requests == 0 || c.RPS <= 0 {
			t.Errorf("closed loop at %d workers measured nothing: %+v", c.Workers, c)
		}
		if c.Latency.P50Us <= 0 || c.Latency.P99Us < c.Latency.P50Us {
			t.Errorf("implausible latency stats at %d workers: %+v", c.Workers, c.Latency)
		}
	}
	if len(rep.Open) != 1 {
		t.Fatalf("expected 1 open-loop measurement, got %d", len(rep.Open))
	}
	if rep.Open[0].Requests == 0 {
		t.Error("open loop measured nothing")
	}
	if rep.Speedup == nil {
		t.Fatal("speedup section missing")
	}
	switch rep.Speedup.Gate {
	case "pass", "skipped-single-core":
	case "fail":
		if code != 2 {
			t.Errorf("gate failed but exit code is %d", code)
		}
	default:
		t.Errorf("unexpected gate verdict %q", rep.Speedup.Gate)
	}
	if rep.Multicore != (rep.GOMAXPROCS > 1) {
		t.Errorf("multicore=%v inconsistent with gomaxprocs=%d", rep.Multicore, rep.GOMAXPROCS)
	}
}
