// Command sweepbench measures the lampsd sweep engine in-process: it boots
// a server.Server (no sockets), evaluates a 48-cell grid — every approach ×
// eight deadline extension factors — over the MPEG-4 decoder graph, and
// reports per-cell scheduling latency percentiles plus cold and warm
// /v1/sweep wall times as JSON.
//
//	sweepbench -out BENCH_sweep.json
//
// Per-cell latencies are taken against a cache-disabled server so every
// sample is a real scheduling run; the sweep wall times use a separate
// cache-enabled server, so the warm number shows the fully memoised path.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"lamps/internal/mpeg"
	"lamps/internal/server"
)

type cell struct {
	approach string
	factor   float64
	maxProcs int
}

type report struct {
	Graph          string  `json:"graph"`
	Cells          int     `json:"cells"`
	CellsPerSec    float64 `json:"cells_per_sec"`
	CellP50Ms      float64 `json:"cell_p50_ms"`
	CellP99Ms      float64 `json:"cell_p99_ms"`
	CellMeanMs     float64 `json:"cell_mean_ms"`
	SweepColdMs    float64 `json:"sweep_cold_ms"`
	SweepWarmMs    float64 `json:"sweep_warm_ms"`
	WarmSpeedup    float64 `json:"warm_speedup"`
	GeneratedAtUTC string  `json:"generated_at_utc"`
}

func main() {
	out := flag.String("out", "BENCH_sweep.json", "write the JSON report to this file (- for stdout)")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, "sweepbench:", err)
		os.Exit(1)
	}
}

func run(out string) error {
	graph := mpegSpec()
	// 48 cells: every approach × the paper's deadline-extension axis, with
	// the processor count left to the heuristics (a cap tight enough to
	// matter makes the tightest deadlines infeasible on this graph).
	approaches := []string{"ss", "lamps", "ss+ps", "lamps+ps", "limit-sf", "limit-mf"}
	factors := []float64{1.5, 2, 2.5, 3, 4, 5, 6, 8}
	procs := []int{0}
	var cells []cell
	for _, a := range approaches {
		for _, f := range factors {
			for _, p := range procs {
				cells = append(cells, cell{a, f, p})
			}
		}
	}

	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))

	// Per-cell latencies: cache off, so each sample is a scheduling run.
	cold := server.New(server.Options{CacheSize: -1, Logger: quiet}).Handler()
	latencies := make([]time.Duration, 0, len(cells))
	var total time.Duration
	for _, c := range cells {
		body, _ := json.Marshal(map[string]any{
			"approach":        c.approach,
			"graph":           graph,
			"deadline_factor": c.factor,
			"max_procs":       c.maxProcs,
		})
		start := time.Now()
		rec := do(cold, "/v1/schedule", body)
		d := time.Since(start)
		if rec.Code != http.StatusOK {
			return fmt.Errorf("cell %+v: status %d: %s", c, rec.Code, rec.Body)
		}
		latencies = append(latencies, d)
		total += d
	}

	// Sweep wall times: cache on, cold then fully memoised.
	sweepBody, _ := json.Marshal(map[string]any{
		"approaches":       approaches,
		"graph":            graph,
		"deadline_factors": factors,
		"max_procs":        procs,
	})
	cached := server.New(server.Options{Logger: quiet}).Handler()
	coldWall, err := timeSweep(cached, sweepBody, len(cells))
	if err != nil {
		return err
	}
	warmWall, err := timeSweep(cached, sweepBody, len(cells))
	if err != nil {
		return err
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	r := report{
		Graph:          "mpeg-fig9",
		Cells:          len(cells),
		CellsPerSec:    float64(len(cells)) / total.Seconds(),
		CellP50Ms:      ms(percentile(latencies, 50)),
		CellP99Ms:      ms(percentile(latencies, 99)),
		CellMeanMs:     ms(total / time.Duration(len(cells))),
		SweepColdMs:    ms(coldWall),
		SweepWarmMs:    ms(warmWall),
		WarmSpeedup:    coldWall.Seconds() / warmWall.Seconds(),
		GeneratedAtUTC: time.Now().UTC().Format(time.RFC3339),
	}
	enc, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		return err
	}
	fmt.Printf("sweepbench: %d cells, %.1f cells/s cold, sweep %.1fms cold / %.1fms warm -> %s\n",
		r.Cells, r.CellsPerSec, r.SweepColdMs, r.SweepWarmMs, out)
	return nil
}

// do serves one in-process request.
func do(h http.Handler, path string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// timeSweep runs one /v1/sweep request and verifies every cell succeeded.
func timeSweep(h http.Handler, body []byte, wantCells int) (time.Duration, error) {
	start := time.Now()
	rec := do(h, "/v1/sweep", body)
	wall := time.Since(start)
	if rec.Code != http.StatusOK {
		return 0, fmt.Errorf("sweep: status %d: %s", rec.Code, rec.Body)
	}
	var ok int
	for _, line := range bytes.Split(bytes.TrimSpace(rec.Body.Bytes()), []byte("\n")) {
		var l struct {
			Summary *struct {
				OK int `json:"ok"`
			} `json:"summary"`
		}
		if json.Unmarshal(line, &l) == nil && l.Summary != nil {
			ok = l.Summary.OK
		}
	}
	if ok != wantCells {
		return 0, fmt.Errorf("sweep completed %d/%d cells ok", ok, wantCells)
	}
	return wall, nil
}

// percentile returns the pth percentile of sorted durations (nearest rank).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := (p*len(sorted) + 99) / 100
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}

// mpegSpec converts the paper's MPEG-4 decoder graph into the inline JSON
// graph form the API accepts.
func mpegSpec() map[string]any {
	g := mpeg.Fig9()
	tasks := make([]map[string]any, g.NumTasks())
	var edges [][2]int
	for v := 0; v < g.NumTasks(); v++ {
		tasks[v] = map[string]any{"weight_cycles": g.Weight(v), "label": g.Label(v)}
		for _, s := range g.Succs(v) {
			edges = append(edges, [2]int{v, int(s)})
		}
	}
	return map[string]any{"name": "mpeg-fig9", "tasks": tasks, "edges": edges}
}
