package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleToDir(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-run", "fig2", "-out", dir}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig2.txt"))
	if err != nil {
		t.Fatalf("output not written: %v", err)
	}
	if !strings.Contains(string(data), "fig2a") || !strings.Contains(string(data), "fcrit") {
		t.Errorf("unexpected content:\n%s", data)
	}
}

func TestRunCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-run", "fig3", "-csv", "-out", dir}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig3.csv"))
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if !strings.Contains(string(data), "breakeven[cycles]") {
		t.Errorf("unexpected csv:\n%s", data)
	}
}

func TestRunQuickCustomSizes(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-run", "table2", "-quick", "-sizes", "40,60", "-count", "2", "-out", dir})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table2.txt"))
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, "40") || !strings.Contains(s, "60") {
		t.Errorf("custom sizes not used:\n%s", s)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-run", "nope"},
		{"-sizes", "abc"},
		{"-sizes", "-5"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunSVGOutput(t *testing.T) {
	dir := t.TempDir()
	svgDir := filepath.Join(dir, "figs")
	if err := run([]string{"-run", "fig3", "-quick", "-out", dir, "-svg", svgDir}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(svgDir, "fig3.svg"))
	if err != nil {
		t.Fatalf("svg not written: %v", err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Errorf("svg content wrong")
	}
}
