// Command experiments regenerates the figures and tables of the paper's
// evaluation (de Langen & Juurlink, Section 5).
//
//	experiments                 # run everything, text tables to stdout
//	experiments -run fig10      # one experiment
//	experiments -csv -out dir/  # one CSV file per experiment
//	experiments -count 20       # more random graphs per group
//
// Absolute energies depend on the synthetic workload substitution (see
// DESIGN.md); the relative comparisons reproduce the paper's shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"lamps/internal/energy"
	"lamps/internal/experiments"
	"lamps/internal/power"
)

// searchProgress is a concurrency-safe core.Observer that reports the
// suite's cumulative search effort on stderr about once a second (-v).
// Experiments evaluate graphs in parallel, so unlike a single engine's
// observer it locks.
type searchProgress struct {
	mu        sync.Mutex
	schedules int
	levels    int
	lastPrint time.Time
}

func (p *searchProgress) OnPhase(string) {}

func (p *searchProgress) OnScheduleBuilt(int, int64) { p.bump(1, 0) }

func (p *searchProgress) OnLevelEvaluated(power.Level, energy.Breakdown) { p.bump(0, 1) }

func (p *searchProgress) bump(schedules, levels int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.schedules += schedules
	p.levels += levels
	if time.Since(p.lastPrint) >= time.Second {
		p.lastPrint = time.Now()
		fmt.Fprintf(os.Stderr, "experiments: %d schedules built, %d (schedule, level) evaluations\n",
			p.schedules, p.levels)
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		runName = fs.String("run", "all", "experiment to run: all or one of "+strings.Join(experiments.Names(), ", "))
		csv     = fs.Bool("csv", false, "emit CSV instead of text tables")
		outDir  = fs.String("out", "", "write one file per experiment into this directory instead of stdout")
		count   = fs.Int("count", 0, "random graphs per size group (default 5; the STG set has 180)")
		scatter = fs.Int("scatter", 0, "graphs per size in the scatter plots (default 6)")
		seed    = fs.Int64("seed", 1, "generator seed")
		sizes   = fs.String("sizes", "", "comma-separated group sizes (default 50,100,500,1000,2000,2500,5000)")
		quick   = fs.Bool("quick", false, "use the reduced smoke-test configuration")
		verify  = fs.Bool("verify", false, "run the reproduction scorecard (checks the paper's claims) and exit")
		svgDir  = fs.String("svg", "", "additionally render each figure as SVG into this directory")
		verbose = fs.Bool("v", false, "report experiment and search progress on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Seed = *seed
	if *count > 0 {
		cfg.GroupCount = *count
	}
	if *scatter > 0 {
		cfg.ScatterCount = *scatter
	}
	if *sizes != "" {
		cfg.GroupSizes = nil
		for _, s := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				return fmt.Errorf("bad -sizes entry %q", s)
			}
			cfg.GroupSizes = append(cfg.GroupSizes, n)
		}
	}

	if *verbose {
		cfg.Observer = &searchProgress{}
	}

	if *verify {
		_, failed, err := experiments.VerifyClaims(os.Stdout, cfg)
		if err != nil {
			return err
		}
		if failed > 0 {
			return fmt.Errorf("%d claim(s) failed", failed)
		}
		return nil
	}

	names := experiments.Names()
	if *runName != "all" {
		names = []string{*runName}
	}
	for _, name := range names {
		if *verbose {
			fmt.Fprintf(os.Stderr, "experiments: running %s\n", name)
		}
		tables, err := experiments.Run(name, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		var w *os.File = os.Stdout
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			ext := ".txt"
			if *csv {
				ext = ".csv"
			}
			f, err := os.Create(filepath.Join(*outDir, name+ext))
			if err != nil {
				return err
			}
			w = f
		}
		for _, t := range tables {
			var err error
			if *csv {
				err = t.WriteCSV(w)
			} else {
				err = t.WriteText(w)
			}
			if err != nil {
				return err
			}
		}
		if *svgDir != "" {
			figs, err := experiments.RenderSVG(name, tables)
			if err != nil {
				return err
			}
			if err := os.MkdirAll(*svgDir, 0o755); err != nil {
				return err
			}
			for _, fig := range figs {
				if err := os.WriteFile(filepath.Join(*svgDir, fig.ID+".svg"), fig.SVG, 0o644); err != nil {
					return err
				}
			}
		}
		if w != os.Stdout {
			if err := w.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
