// Command lampsd serves the leakage-aware scheduling heuristics over
// HTTP/JSON: clients POST a task graph (inline JSON or STG text), a
// deadline and an approach name to /schedule (alias /v1/schedule) and
// receive the full scheduling result — energy breakdown, processor count,
// operating point and per-task placement — or a whole grid of
// {approaches × deadlines × processor caps} to /v1/sweep and receive one
// NDJSON line per cell. Results are memoised in an LRU keyed by a canonical
// problem digest, so repeated graphs are served without rescheduling;
// /metrics exposes request, cache and latency counters and /healthz a
// liveness probe.
//
//	lampsd -addr :8080 -workers 8 -cache 4096 -request-timeout 60s
//
// Every request is bounded by -request-timeout end to end (queueing plus
// scheduling time): requests shed before execution return 503 (or 429 when
// their cost class's admission queue is full), runs that outlive the
// deadline return 504 — all with a Retry-After derived from the observed
// queue-wait distribution. The server drains gracefully on SIGINT/SIGTERM:
// in-flight requests get up to -drain to complete before the process exits.
//
// With -store-dir set, every cached result is also appended to a
// crash-tolerant segment log in that directory and warm-loaded into the
// cache on the next start, so a restarted server answers previously seen
// problems from the first request on — byte-identical, because the store
// persists the rendered response bytes keyed by the canonical problem
// digest. Segments written by an incompatible binary (a different digest or
// result-format version) are skipped wholesale; truncated or corrupt
// segment tails are detected by per-record checksums and dropped.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lamps/internal/power"
	"lamps/internal/server"
	"lamps/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "lampsd:", err)
		os.Exit(1)
	}
}

// run builds and serves the HTTP server until ctx is cancelled, then drains
// it. Log output (including the "listening on" line that reports the bound
// address) goes to logw.
func run(ctx context.Context, args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("lampsd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		workers   = fs.Int("workers", 0, "max concurrent scheduling runs (0 = GOMAXPROCS)")
		searchers = fs.Int("search-workers", 0, "workers parallelising each run's candidate search (0 = GOMAXPROCS, negative = serial)")
		cacheSize = fs.Int("cache", server.DefaultCacheSize, "result cache capacity in entries (negative disables)")
		maxTasks  = fs.Int("max-tasks", server.DefaultMaxTasks, "largest accepted graph, in tasks")
		maxBody   = fs.Int64("max-body", server.DefaultMaxBodyBytes, "largest accepted request body, in bytes")
		drain     = fs.Duration("drain", 10*time.Second, "graceful shutdown timeout")
		model     = fs.String("model", "", "load the power model from a JSON file (default: built-in 70nm)")
		platform  = fs.String("platform", "", "load a heterogeneous default platform from a JSON file (see examples/platforms); excludes -model")
		reqTO     = fs.Duration("request-timeout", 60*time.Second, "end-to-end per-request deadline covering queueing and scheduling (0 disables)")
		maxCells  = fs.Int("sweep-max-cells", server.DefaultSweepMaxCells, "largest accepted /v1/sweep grid, in cells")
		selfcheck = fs.Bool("selfcheck", false, "re-verify every scheduling result from first principles (canary mode; failures return 500 and count in lampsd_verify_failures_total)")
		storeDir  = fs.String("store-dir", "", "persist cached results to this directory and warm-load them on startup (empty disables persistence)")
		queue     = fs.Int("queue-depth", server.DefaultQueueDepth, "per-cost-class admission queue depth; excess requests are shed with 429 + Retry-After")
		pprofAddr = fs.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); empty disables")
	)
	fs.SetOutput(logw)
	if err := fs.Parse(args); err != nil {
		return err
	}

	m := power.Default70nm()
	if *model != "" {
		if *platform != "" {
			return fmt.Errorf("-model and -platform are mutually exclusive")
		}
		f, err := os.Open(*model)
		if err != nil {
			return err
		}
		var perr error
		m, perr = power.LoadJSON(f)
		f.Close()
		if perr != nil {
			return perr
		}
	}
	var pf *power.Platform
	if *platform != "" {
		f, err := os.Open(*platform)
		if err != nil {
			return err
		}
		var perr error
		pf, perr = power.LoadPlatformJSON(f)
		f.Close()
		if perr != nil {
			return perr
		}
	}

	logger := slog.New(slog.NewJSONHandler(logw, nil))
	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = server.OpenStore(*storeDir, logger)
		if err != nil {
			return fmt.Errorf("opening result store: %w", err)
		}
		defer func() {
			if cerr := st.Close(); cerr != nil {
				logger.Warn("closing result store", "err", cerr)
			}
			stats := st.Stats()
			logger.Info("result store closed",
				"dir", *storeDir, "loaded", stats.Loaded, "appended", stats.Appended,
				"dropped_tails", stats.DroppedTails, "stale_segments", stats.Stale)
		}()
	}
	srv := server.New(server.Options{
		Model:          m,
		Platform:       pf,
		Workers:        *workers,
		SearchWorkers:  *searchers,
		CacheSize:      *cacheSize,
		MaxTasks:       *maxTasks,
		MaxBodyBytes:   *maxBody,
		RequestTimeout: *reqTO,
		SweepMaxCells:  *maxCells,
		SelfCheck:      *selfcheck,
		Store:          st,
		QueueDepth:     *queue,
		Logger:         logger,
	})

	if *pprofAddr != "" {
		// The profiler gets its own mux on its own listener: the serving
		// address never exposes /debug/pprof, and the explicit handler
		// registrations below (rather than net/http/pprof's init on
		// http.DefaultServeMux) keep that guarantee even if some package
		// ever serves the default mux.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listen: %w", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ps := &http.Server{Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
		go func() { ps.Serve(pln) }()
		defer ps.Close()
		logger.Info("pprof listening", "addr", pln.Addr().String())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	logger.Info("listening", "addr", ln.Addr().String(), "workers", *workers, "cache", *cacheSize)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	logger.Info("draining", "timeout", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		// The drain timeout elapsed with requests still in flight; close
		// them forcibly but report a clean exit — SIGTERM handling worked.
		logger.Warn("drain timeout exceeded, closing", "err", err)
		hs.Close()
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("stopped")
	return nil
}
