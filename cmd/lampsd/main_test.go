package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// logCapture tees run's log output and extracts the bound address from the
// "listening" line.
type logCapture struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	addr chan string
	once sync.Once
}

func newLogCapture() *logCapture {
	return &logCapture{addr: make(chan string, 1)}
}

func (lc *logCapture) Write(p []byte) (int, error) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	n, err := lc.buf.Write(p)
	sc := bufio.NewScanner(bytes.NewReader(lc.buf.Bytes()))
	for sc.Scan() {
		var entry struct {
			Msg  string `json:"msg"`
			Addr string `json:"addr"`
		}
		if json.Unmarshal(sc.Bytes(), &entry) == nil && entry.Msg == "listening" {
			lc.once.Do(func() { lc.addr <- entry.Addr })
		}
	}
	return n, err
}

func (lc *logCapture) String() string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.buf.String()
}

// TestServeAndGracefulShutdown boots the daemon on an ephemeral port,
// serves a scheduling request and a health check, then cancels the context
// (the SIGTERM path) and verifies a clean drain.
func TestServeAndGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lc := newLogCapture()
	done := make(chan error, 1)
	go func() { done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-drain", "5s"}, lc) }()

	var addr string
	select {
	case addr = <-lc.addr:
	case <-time.After(10 * time.Second):
		t.Fatalf("server did not report a listen address; log:\n%s", lc.String())
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	reqBody := `{"approach":"lamps+ps","deadline_factor":2,"graph":{"tasks":[{"weight_cycles":3100000},{"weight_cycles":6200000},{"weight_cycles":4650000}],"edges":[[0,1],[0,2]]}}`
	resp, err = http.Post(base+"/schedule", "application/json", strings.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: status %d, body %s", resp.StatusCode, body)
	}
	var sched struct {
		Approach string `json:"approach"`
		NumProcs int    `json:"num_procs"`
	}
	if err := json.Unmarshal(body, &sched); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	if sched.Approach != "LAMPS+PS" || sched.NumProcs < 1 {
		t.Errorf("unexpected result %+v", sched)
	}

	sweepBody := `{"approaches":["ss","lamps"],"deadline_factors":[2,4],"graph":{"tasks":[{"weight_cycles":3100000},{"weight_cycles":6200000},{"weight_cycles":4650000}],"edges":[[0,1],[0,2]]}}`
	resp, err = http.Post(base+"/v1/sweep", "application/json", strings.NewReader(sweepBody))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("sweep Content-Type %q, want application/x-ndjson", ct)
	}
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	if len(lines) != 5 { // 4 cells + summary
		t.Fatalf("sweep returned %d lines, want 5:\n%s", len(lines), body)
	}
	var sum struct {
		Summary *struct {
			OK int `json:"ok"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &sum); err != nil || sum.Summary == nil || sum.Summary.OK != 4 {
		t.Errorf("sweep summary line %s (err %v), want 4 ok cells", lines[len(lines)-1], err)
	}

	cancel() // the SIGTERM path
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v; log:\n%s", err, lc.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("server did not shut down; log:\n%s", lc.String())
	}
	log := lc.String()
	for _, want := range []string{"draining", "stopped"} {
		if !strings.Contains(log, want) {
			t.Errorf("log missing %q:\n%s", want, log)
		}
	}
}

// TestWarmRestartServesPersistedResults is the restart contract end to end:
// boot the daemon with -store-dir, schedule a problem (a cache miss), drain
// gracefully, boot a second daemon on the same directory, and require the
// same request to come back as a cache hit with byte-identical bytes.
func TestWarmRestartServesPersistedResults(t *testing.T) {
	dir := t.TempDir()
	reqBody := `{"approach":"lamps+ps","deadline_factor":2,"graph":{"tasks":[{"weight_cycles":3100000},{"weight_cycles":6200000},{"weight_cycles":4650000}],"edges":[[0,1],[0,2]]}}`

	boot := func() (base string, lc *logCapture, stop func() error) {
		ctx, cancel := context.WithCancel(context.Background())
		lc = newLogCapture()
		done := make(chan error, 1)
		go func() {
			done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-drain", "5s", "-store-dir", dir}, lc)
		}()
		var addr string
		select {
		case addr = <-lc.addr:
		case <-time.After(10 * time.Second):
			cancel()
			t.Fatalf("server did not report a listen address; log:\n%s", lc.String())
		}
		return "http://" + addr, lc, func() error {
			cancel()
			select {
			case err := <-done:
				return err
			case <-time.After(10 * time.Second):
				t.Fatalf("server did not shut down; log:\n%s", lc.String())
				return nil
			}
		}
	}

	schedule := func(base string) (body []byte, cacheHeader string) {
		resp, err := http.Post(base+"/schedule", "application/json", strings.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		body, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("schedule: status %d, body %s", resp.StatusCode, body)
		}
		return body, resp.Header.Get("X-Lamps-Cache")
	}

	base, _, stop := boot()
	firstBody, src := schedule(base)
	if src != "miss" {
		t.Errorf("first run: cache header %q, want miss", src)
	}
	if err := stop(); err != nil {
		t.Fatalf("first run shutdown: %v", err)
	}

	base, lc, stop := boot()
	secondBody, src := schedule(base)
	if src != "hit" {
		t.Errorf("after restart: cache header %q, want hit", src)
	}
	if !bytes.Equal(firstBody, secondBody) {
		t.Errorf("restart changed response bytes:\nbefore: %s\nafter:  %s", firstBody, secondBody)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"lampsd_cache_hits_total 1", "lampsd_store_loaded_total 1"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics after restart missing %q", want)
		}
	}
	if err := stop(); err != nil {
		t.Fatalf("second run shutdown: %v", err)
	}
	if log := lc.String(); !strings.Contains(log, "warm-loaded persisted results") {
		t.Errorf("second run log missing warm-load line:\n%s", log)
	}
}

func TestBadFlags(t *testing.T) {
	err := run(context.Background(), []string{"-definitely-not-a-flag"}, io.Discard)
	if err == nil {
		t.Fatal("run accepted an unknown flag")
	}
}

func TestBadModelFile(t *testing.T) {
	err := run(context.Background(), []string{"-model", "/nonexistent/model.json"}, io.Discard)
	if err == nil {
		t.Fatal("run accepted a missing model file")
	}
}
