package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestRunShortCampaign: a small campaign exits 0 with a clean summary on
// stdout and nothing on stderr.
func TestRunShortCampaign(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-n", "6", "-seed", "3", "-sizes", "8,12", "-factors", "1.5,4", "-mutate-every", "3"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "violations: 0") {
		t.Fatalf("summary missing clean tally: %s", out.String())
	}
	if errb.Len() != 0 {
		t.Fatalf("unexpected stderr: %s", errb.String())
	}
}

// TestRunFaultsCampaign: the -faults flag switches to the fault-injection
// campaign, which exits 0 with its own clean tally.
func TestRunFaultsCampaign(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-faults", "-n", "4", "-seed", "3", "-sizes", "8,12", "-factors", "3,6", "-mutate-every", "2"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "fault patterns") || !strings.Contains(out.String(), "violations: 0") {
		t.Fatalf("summary missing fault tally: %s", out.String())
	}
	if errb.Len() != 0 {
		t.Fatalf("unexpected stderr: %s", errb.String())
	}
}

// TestRunBadFlags: malformed lists are usage errors (exit 2), not crashes.
func TestRunBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-sizes", "ten"}, &out, &errb); code != 2 {
		t.Fatalf("bad -sizes: exit %d", code)
	}
	if code := run(context.Background(), []string{"-factors", "x"}, &out, &errb); code != 2 {
		t.Fatalf("bad -factors: exit %d", code)
	}
	if code := run(context.Background(), []string{"-nope"}, &out, &errb); code != 2 {
		t.Fatalf("unknown flag: exit %d", code)
	}
}

// TestRunCancelled: an already-cancelled context is an infrastructure
// failure (exit 2), distinct from a violation (exit 1).
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb bytes.Buffer
	if code := run(ctx, []string{"-n", "50"}, &out, &errb); code != 2 {
		t.Fatalf("cancelled campaign: exit %d", code)
	}
}
