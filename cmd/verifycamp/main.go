// Command verifycamp runs the randomized metamorphic verification campaign
// of internal/verify/campaign from the command line, sized for two jobs:
//
//	verifycamp            # CI short run: 200 graphs, exit 1 on any violation
//	verifycamp -long      # nightly: 600 graphs including 100/200-task sizes
//	verifycamp -faults    # fault-injection campaign instead: k-fault plans
//	                      # replayed and re-verified per sampled fault pattern
//
// Every graph is pushed through all six approaches (S&S, S&S+PS, LAMPS,
// LAMPS+PS, LIMIT-SF, LIMIT-MF) with the engine's self-check enabled; every
// schedule and energy breakdown is re-derived by the independent verifier;
// cross-heuristic and metamorphic invariants are asserted; and a mutation
// self-test periodically proves the verifier still rejects known
// corruptions. The campaign is deterministic in its flags, so a CI failure
// reproduces locally with the same invocation.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"lamps/internal/verify/campaign"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the campaign and returns the process exit code: 0 clean,
// 1 violations found, 2 usage or infrastructure error.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("verifycamp", flag.ContinueOnError)
	var (
		n       = fs.Int("n", 200, "number of random graphs")
		seed    = fs.Int64("seed", 1, "base seed; graph i uses seed+7919*i")
		sizes   = fs.String("sizes", "10,20,30,50", "comma-separated task counts, rotated per graph")
		factors = fs.String("factors", "1.5,2,4,8", "comma-separated deadline factors over the critical path")
		mutate  = fs.Int("mutate-every", 25, "run the mutation self-test on every k-th graph (negative disables)")
		faults  = fs.Bool("faults", false, "run the fault-injection campaign instead of the base one")
		long    = fs.Bool("long", false, "nightly shape: 3x the graphs and sizes up to 200 tasks")
		verbose = fs.Bool("v", false, "log progress during the campaign")
	)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	opt := campaign.Options{
		Graphs:      *n,
		Seed:        *seed,
		MutateEvery: *mutate,
	}
	var err error
	if opt.Sizes, err = parseInts(*sizes); err != nil {
		fmt.Fprintf(stderr, "verifycamp: -sizes: %v\n", err)
		return 2
	}
	if opt.Factors, err = parseFloats(*factors); err != nil {
		fmt.Fprintf(stderr, "verifycamp: -factors: %v\n", err)
		return 2
	}
	if *long {
		opt.Graphs = 3 * *n
		opt.Sizes = append(opt.Sizes, 100, 200)
		opt.MutateEvery = 10
	}
	if *verbose {
		opt.Logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, "verifycamp: "+format+"\n", args...)
		}
	}

	var (
		summary    string
		violations []string
	)
	if *faults {
		rep, ferr := campaign.RunFaults(ctx, opt)
		err = ferr
		if rep != nil {
			summary, violations = rep.Summary(), rep.Violations
		}
	} else {
		rep, berr := campaign.Run(ctx, opt)
		err = berr
		if rep != nil {
			summary, violations = rep.Summary(), rep.Violations
		}
	}
	if summary != "" {
		fmt.Fprintln(stdout, summary)
	}
	for _, v := range violations {
		fmt.Fprintln(stderr, "VIOLATION:", v)
	}
	if err != nil {
		fmt.Fprintf(stderr, "verifycamp: %v\n", err)
		return 2
	}
	if len(violations) > 0 {
		return 1
	}
	return 0
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
