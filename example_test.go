package lamps_test

import (
	"fmt"

	"lamps"
)

// The paper's running example (Fig. 4a): five tasks, deadline 1.25x the
// critical path. LAMPS trades one processor for a slightly higher frequency
// and wins (Fig. 7a).
func ExampleLAMPS() {
	b := lamps.NewGraphBuilder("fig4a")
	t1 := b.AddTask(2 * lamps.Millisecond)
	t2 := b.AddTask(6 * lamps.Millisecond)
	t3 := b.AddTask(4 * lamps.Millisecond)
	t4 := b.AddTask(4 * lamps.Millisecond)
	t5 := b.AddTask(2 * lamps.Millisecond)
	b.AddEdge(t1, t2)
	b.AddEdge(t1, t3)
	b.AddEdge(t1, t4)
	b.AddEdge(t2, t5)
	b.AddEdge(t3, t5)
	g, err := b.Build()
	if err != nil {
		panic(err)
	}

	cfg := lamps.DeadlineFactor(g, nil, 1.25)
	ss, _ := lamps.ScheduleAndStretch(g, cfg)
	la, _ := lamps.LAMPS(g, cfg)
	fmt.Printf("S&S employs %d processors, LAMPS %d\n", ss.NumProcs, la.NumProcs)
	fmt.Printf("LAMPS saves %.0f%%\n", 100*(1-la.TotalEnergy()/ss.TotalEnergy()))
	// Output:
	// S&S employs 3 processors, LAMPS 2
	// LAMPS saves 19%
}

// Scheduling the paper's MPEG-1 benchmark (Table 3): LAMPS+PS lands within
// a percent of the absolute lower bound.
func ExampleLAMPSPS() {
	g, deadline := lamps.MPEG1Fig9()
	cfg := lamps.Config{Deadline: deadline}

	best, _ := lamps.LAMPSPS(g, cfg)
	limit, _ := lamps.LimitMF(g, cfg)
	fmt.Printf("LAMPS+PS uses %d processors at Vdd=%.2fV\n", best.NumProcs, best.Level.Vdd)
	fmt.Printf("within %.1f%% of LIMIT-MF\n", 100*(best.TotalEnergy()/limit.TotalEnergy()-1))
	// Output:
	// LAMPS+PS uses 6 processors at Vdd=0.70V
	// within 0.5% of LIMIT-MF
}

// The discrete voltage ladder of the default 70 nm model: the critical
// (energy-optimal) level sits at 0.70 V.
func ExampleDefault70nm() {
	m := lamps.Default70nm()
	fmt.Printf("%d levels, fmax %.2f GHz\n", len(m.Levels()), m.FMax()/1e9)
	fmt.Printf("critical: %v\n", m.CriticalLevel())
	// Output:
	// 13 levels, fmax 3.09 GHz
	// critical: level 6 (Vdd=0.70V, f=1.27e+09Hz, 0.41·fmax)
}

// Plain list scheduling with earliest deadline first.
func ExampleListEDF() {
	b := lamps.NewGraphBuilder("chain+side")
	a := b.AddTask(10)
	c := b.AddTask(20)
	d := b.AddTask(5)
	b.AddEdge(a, c)
	_ = d
	g, _ := b.Build()

	s, _ := lamps.ListEDF(g, 2)
	fmt.Printf("makespan %d cycles on %d processors\n", s.Makespan, s.ProcsUsed())
	// Output:
	// makespan 30 cycles on 2 processors
}
